// Package event provides the discrete-event simulation core used by every
// timed component in the simulator (memory controllers, refresh timers,
// response delivery). It is a minimal replacement for the event queue at the
// heart of architectural simulators such as Gem5.
//
// Time is measured in integer picoseconds so that memory-device clocks that
// are not integer nanoseconds (e.g. RLDRAM3 tCK = 0.93 ns) can be expressed
// exactly enough, while a 1 GHz CPU cycle is exactly 1000 ps.
package event

import "moca/internal/obs"

// Time is a simulation timestamp in picoseconds.
type Time = int64

// Common durations, in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Func is the body of a scheduled event.
type Func func()

type item struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same timestamp
	fn  Func
}

// Queue is a time-ordered event queue. Events scheduled for the same
// timestamp run in the order they were scheduled. Queue is not safe for
// concurrent use; the simulator is single-threaded by design so that runs
// are exactly reproducible.
type Queue struct {
	heap []item
	seq  uint64
	now  Time
	runs uint64

	// Observability instruments; nil (free) unless AttachObs was called.
	obsScheduled *obs.Counter
	obsExecuted  *obs.Counter
	obsDepth     *obs.Gauge
}

// NewQueue returns an empty queue positioned at time 0.
func NewQueue() *Queue { return &Queue{} }

// AttachObs registers the queue's instruments on the registry: the
// "event.scheduled" / "event.executed" counters and the
// "event.max_queue_depth" high-watermark gauge. A nil registry detaches.
func (q *Queue) AttachObs(r *obs.Registry) {
	if r == nil {
		q.obsScheduled, q.obsExecuted, q.obsDepth = nil, nil, nil
		return
	}
	q.obsScheduled = r.Counter("event.scheduled")
	q.obsExecuted = r.Counter("event.executed")
	q.obsDepth = r.Gauge("event.max_queue_depth")
}

// Now returns the timestamp of the most recently executed event, or the
// time passed to the latest AdvanceTo, whichever is later.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Executed returns the total number of events executed so far.
func (q *Queue) Executed() uint64 { return q.runs }

// Schedule enqueues fn to run at the given absolute time. Scheduling in the
// past is a simulator bug; it panics rather than silently reordering time.
func (q *Queue) Schedule(at Time, fn Func) {
	if at < q.now {
		panic("event: scheduled in the past")
	}
	q.heap = append(q.heap, item{at: at, seq: q.seq, fn: fn})
	q.seq++
	q.up(len(q.heap) - 1)
	if q.obsScheduled != nil {
		q.obsScheduled.Inc()
		q.obsDepth.RecordMax(int64(len(q.heap)))
	}
}

// After enqueues fn to run delay picoseconds after the current time.
func (q *Queue) After(delay Time, fn Func) { q.Schedule(q.now+delay, fn) }

// NextTime returns the timestamp of the earliest pending event and true, or
// (0, false) if the queue is empty.
func (q *Queue) NextTime() (Time, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].at, true
}

// RunOne executes the earliest pending event, advancing Now to its
// timestamp. It reports whether an event was executed.
func (q *Queue) RunOne() bool {
	if len(q.heap) == 0 {
		return false
	}
	it := q.heap[0]
	q.pop()
	q.now = it.at
	q.runs++
	if q.obsExecuted != nil {
		q.obsExecuted.Inc()
	}
	it.fn()
	return true
}

// RunUntil executes every event with timestamp <= t (including events those
// events schedule, if they also fall within t) and then advances Now to t.
// It returns the number of events executed.
func (q *Queue) RunUntil(t Time) int {
	n := 0
	for len(q.heap) > 0 && q.heap[0].at <= t {
		if !q.RunOne() {
			break
		}
		n++
	}
	if q.now < t {
		q.now = t
	}
	return n
}

// Drain runs events until the queue is empty and returns the number
// executed. Useful at the end of a simulation to let in-flight memory
// traffic settle.
func (q *Queue) Drain() int {
	n := 0
	for q.RunOne() {
		n++
	}
	return n
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue) pop() {
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = item{} // release closure for GC
	q.heap = q.heap[:last]
	if len(q.heap) > 0 {
		q.down(0)
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
