// Package event provides the discrete-event simulation core used by every
// timed component in the simulator (memory controllers, refresh timers,
// response delivery). It is a minimal replacement for the event queue at the
// heart of architectural simulators such as Gem5.
//
// Time is measured in integer picoseconds so that memory-device clocks that
// are not integer nanoseconds (e.g. RLDRAM3 tCK = 0.93 ns) can be expressed
// exactly enough, while a 1 GHz CPU cycle is exactly 1000 ps.
//
// The queue is allocation-free on the hot path: events are pooled records in
// a growable arena recycled through a free list, ordered by an intrusive
// 4-ary heap of pool indices. Components implement Handler and pass a small
// (op, i64, p) payload instead of allocating a closure per event; the
// closure-based Schedule/After API remains for cold paths and tests.
package event

import "moca/internal/obs"

// Time is a simulation timestamp in picoseconds.
type Time = int64

// Common durations, in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Func is the body of a closure-scheduled event.
type Func func()

// Handler receives pooled events. now is the event's timestamp; op, i64,
// and p are the payload given at scheduling time. Pointer-shaped payloads
// (pointers, interfaces, funcs) convert to any without allocating.
type Handler interface {
	OnEvent(now Time, op int32, i64 int64, p any)
}

// funcRunner adapts the legacy closure API onto Handler.
type funcRunner struct{}

func (funcRunner) OnEvent(_ Time, _ int32, _ int64, p any) { p.(Func)() }

var runFunc Handler = funcRunner{}

// rec is one pooled event record. pos is its index in the heap (-1 when
// free), making reschedules O(log n) without search.
type rec struct {
	at   Time
	s    Time   // wake ordering: virtual schedule time (see ScheduleWake)
	ord  uint64 // FIFO tie-break: schedule order (wakes: arming order)
	i64  int64
	h    Handler
	p    any
	op   int32
	pos  int32
	gen  uint32
	wake bool
}

// Handle names a pending wake event for rescheduling. The generation field
// detects (and panics on) use after the wake has fired.
type Handle struct {
	idx int32
	gen uint32
}

// virtRec is one virtual event: a completion the fast path serviced inline
// (an L1/L2 hit whose latency is already known) that still owns a slot in
// the event order. It carries no handler — its only observable life is the
// executed-count credit it pays when the slow path would have run it, and
// the possibility of being promoted back into a real event (PromoteVirtual)
// if a dependent turns out to need the completion callback after all.
type virtRec struct {
	at  Time
	ord uint64
}

// NilHandle is the zero Handle; it never names a pending wake.
var NilHandle = Handle{idx: -1}

// Queue is a time-ordered event queue. Events scheduled for the same
// timestamp run in the order they were scheduled. Queue is not safe for
// concurrent use; the simulator is single-threaded by design so that runs
// are exactly reproducible.
type Queue struct {
	pool []rec
	free []int32
	heap []int32
	virt []virtRec // pending virtual events, sorted by (at, ord)
	seq  uint64
	now  Time
	runs uint64

	// minAt caches the earliest pending timestamp across heap and virt
	// (farFuture when both are empty), so the per-cycle QuietUntil guard
	// is one compare instead of a heap peek. Every mutation of either
	// structure refreshes it via refreshMin.
	minAt Time
	// heapMin caches the heap head's timestamp alone (undefined when the
	// heap is empty — NextTime checks the length first), so the per-batch
	// NextTime bound is a field load instead of a pool pointer chase.
	heapMin Time

	// Observability instruments; nil (free) unless AttachObs was called.
	obsScheduled *obs.Counter
	obsExecuted  *obs.Counter
	obsDepth     *obs.Gauge
}

// farFuture is the cached-minimum sentinel for "nothing pending".
const farFuture = Time(1) << 62

// NewQueue returns an empty queue positioned at time 0.
func NewQueue() *Queue { return &Queue{minAt: farFuture} }

// AttachObs registers the queue's instruments on the registry: the
// "event.scheduled" / "event.executed" counters and the
// "event.max_queue_depth" high-watermark gauge. A nil registry detaches.
func (q *Queue) AttachObs(r *obs.Registry) {
	if r == nil {
		q.obsScheduled, q.obsExecuted, q.obsDepth = nil, nil, nil
		return
	}
	q.obsScheduled = r.Counter("event.scheduled")
	q.obsExecuted = r.Counter("event.executed")
	q.obsDepth = r.Gauge("event.max_queue_depth")
}

// Now returns the timestamp of the most recently executed event, or the
// time passed to the latest RunUntil, whichever is later.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events (wakes included).
func (q *Queue) Len() int { return len(q.heap) }

// Executed returns the total number of events executed so far, including
// virtual ticks accounted through Credit; wake events are excluded.
func (q *Queue) Executed() uint64 { return q.runs }

//moca:hotpath
func (q *Queue) alloc() int32 {
	if n := len(q.free); n > 0 {
		i := q.free[n-1]
		q.free = q.free[:n-1]
		return i
	}
	q.pool = append(q.pool, rec{})
	return int32(len(q.pool) - 1)
}

//moca:hotpath
func (q *Queue) releaseRec(i int32) {
	r := &q.pool[i]
	r.h, r.p = nil, nil
	r.pos = -1
	r.gen++
	q.free = append(q.free, i)
}

// Post enqueues a pooled event for Handler h at the given absolute time.
// Scheduling in the past is a simulator bug; it panics rather than silently
// reordering time. Post performs no allocation when p is pointer-shaped.
//moca:hotpath
func (q *Queue) Post(at Time, h Handler, op int32, i64 int64, p any) {
	if at < q.now {
		panic("event: scheduled in the past")
	}
	i := q.alloc()
	r := &q.pool[i]
	r.at, r.s, r.ord, r.wake = at, 0, q.seq, false
	r.h, r.op, r.i64, r.p = h, op, i64, p
	q.seq++
	q.push(i)
	if q.obsScheduled != nil {
		q.obsScheduled.Inc()
		q.obsDepth.RecordMax(int64(len(q.heap) + len(q.virt)))
	}
}

// PostVirtual reserves the next event-order slot for a completion that is
// being serviced inline (the common-case fast path): it consumes a sequence
// number and counts as scheduled exactly like Post, but allocates no heap
// record and never dispatches a handler. The credit for its execution is
// paid when the event order reaches it (see expireBefore/RunUntil), so the
// scheduled/executed counters and depth watermarks stay byte-identical to a
// run where the completion was a real event. The returned ord names the
// slot for PromoteVirtual.
//moca:hotpath
func (q *Queue) PostVirtual(at Time) uint64 {
	if at < q.now {
		panic("event: virtual event scheduled in the past")
	}
	ord := q.seq
	q.seq++
	i := len(q.virt)
	q.virt = append(q.virt, virtRec{at: at, ord: ord})
	for i > 0 && virtLess(q.virt[i], q.virt[i-1]) {
		q.virt[i], q.virt[i-1] = q.virt[i-1], q.virt[i]
		i--
	}
	if at < q.minAt {
		q.minAt = at
	}
	if q.obsScheduled != nil {
		q.obsScheduled.Inc()
		q.obsDepth.RecordMax(int64(len(q.heap) + len(q.virt)))
	}
	return ord
}

// PromoteVirtual rematerializes the virtual event named by ord as a real
// pooled event with its ORIGINAL order slot, so it runs exactly where the
// slow path would have run it — the fast path uses this when a dependent
// needs the completion callback after all. It was already counted as
// scheduled by PostVirtual, so no counters move here. Panics on an unknown
// ord (a promote after expiry is a simulator bug).
//moca:hotpath
func (q *Queue) PromoteVirtual(at Time, ord uint64, h Handler, op int32, i64 int64, p any) {
	if at < q.now {
		panic("event: virtual event promoted into the past")
	}
	for vi := range q.virt {
		if q.virt[vi].ord != ord {
			continue
		}
		copy(q.virt[vi:], q.virt[vi+1:])
		q.virt = q.virt[:len(q.virt)-1]
		i := q.alloc()
		r := &q.pool[i]
		r.at, r.s, r.ord, r.wake = at, 0, ord, false
		r.h, r.op, r.i64, r.p = h, op, i64, p
		q.push(i)
		return
	}
	panic("event: promoting unknown virtual event")
}

// PendingVirtual returns the number of pending virtual events (tests).
func (q *Queue) PendingVirtual() int { return len(q.virt) }

//moca:hotpath
func virtLess(a, b virtRec) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.ord < b.ord
}

// expireBefore pays the executed-count credit of every virtual event the
// slow path would have run before the real event r: earlier timestamp, or
// the same timestamp with r a wake (normal events sort before wakes) or an
// earlier order slot — the exact less() ordering.
//moca:hotpath
func (q *Queue) expireBefore(r *rec) {
	for len(q.virt) > 0 {
		v := q.virt[0]
		if v.at > r.at || (v.at == r.at && !r.wake && v.ord > r.ord) {
			return
		}
		q.expireOne()
	}
}

//moca:hotpath
func (q *Queue) expireOne() {
	copy(q.virt, q.virt[1:])
	q.virt = q.virt[:len(q.virt)-1]
	q.runs++
	q.refreshMin()
	if q.obsExecuted != nil {
		q.obsExecuted.Inc()
	}
}

// PostAfter enqueues a pooled event delay picoseconds after the current time.
//moca:hotpath
func (q *Queue) PostAfter(delay Time, h Handler, op int32, i64 int64, p any) {
	q.Post(q.now+delay, h, op, i64, p)
}

// Schedule enqueues fn to run at the given absolute time (closure API; the
// closure itself is the only allocation).
func (q *Queue) Schedule(at Time, fn Func) { q.Post(at, runFunc, 0, 0, fn) }

// After enqueues fn to run delay picoseconds after the current time.
func (q *Queue) After(delay Time, fn Func) { q.Schedule(q.now+delay, fn) }

// ScheduleWake enqueues a wake event: a reschedulable timer a component uses
// to sleep until its next state change. Wakes differ from normal events in
// three ways that together preserve bit-identical runs versus a model that
// polls every device clock:
//
//   - they are excluded from the scheduled/executed counters (the component
//     accounts for the clock ticks it skips via Credit);
//   - at equal timestamps they sort after every normal event, then among
//     themselves by (s, arming order), where s is the time the equivalent
//     polled event would have been scheduled (at minus one device clock,
//     floored at the chain's arming time);
//   - they can be pulled earlier in place through the returned Handle.
//moca:hotpath
func (q *Queue) ScheduleWake(at, s Time, h Handler, op int32) Handle {
	if at < q.now {
		panic("event: wake scheduled in the past")
	}
	i := q.alloc()
	r := &q.pool[i]
	r.at, r.s, r.ord, r.wake = at, s, q.seq, true
	r.h, r.op, r.i64, r.p = h, op, 0, nil
	q.seq++
	q.push(i)
	if q.obsDepth != nil {
		q.obsDepth.RecordMax(int64(len(q.heap) + len(q.virt)))
	}
	return Handle{idx: i, gen: r.gen}
}

// RescheduleWake moves a pending wake to a new time, keeping its arming
// order. It panics if the handle's wake already fired (stale handle).
//moca:hotpath
func (q *Queue) RescheduleWake(hd Handle, at, s Time) {
	if at < q.now {
		panic("event: wake rescheduled into the past")
	}
	if hd.idx < 0 || int(hd.idx) >= len(q.pool) {
		panic("event: invalid wake handle")
	}
	r := &q.pool[hd.idx]
	if r.gen != hd.gen || !r.wake || r.pos < 0 {
		panic("event: stale wake handle")
	}
	r.at, r.s = at, s
	if !q.up(int(r.pos)) {
		q.down(int(r.pos))
	}
	q.refreshMin()
}

// Credit accounts for virtual events: device-clock ticks a component proved
// it could skip. They count exactly as if they had been scheduled and
// executed, keeping the observability counters identical to a polling model.
//moca:hotpath
func (q *Queue) Credit(scheduled, executed uint64) {
	q.runs += executed
	if q.obsScheduled != nil {
		q.obsScheduled.Add(scheduled)
		q.obsExecuted.Add(executed)
	}
}

// NextTime returns the timestamp of the earliest pending real event and
// true, or (0, false) if the heap is empty. Virtual events are deliberately
// excluded: they carry no handler, so nothing needs to stop for them — the
// fast path uses NextTime to bound compute batches by the next event that
// can actually change state.
//moca:hotpath
func (q *Queue) NextTime() (Time, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heapMin, true
}

// RunOne executes the earliest pending event, advancing Now to its
// timestamp. It reports whether an event was executed.
//moca:hotpath
func (q *Queue) RunOne() bool {
	if len(q.heap) == 0 {
		return false
	}
	i := q.heap[0]
	r := &q.pool[i]
	q.expireBefore(r)
	at, h, op, i64, p, wake := r.at, r.h, r.op, r.i64, r.p, r.wake
	q.popMin()
	q.releaseRec(i)
	q.now = at
	if !wake {
		q.runs++
		if q.obsExecuted != nil {
			q.obsExecuted.Inc()
		}
	}
	h.OnEvent(at, op, i64, p)
	return true
}

// QuietUntil reports whether RunUntil(t) would be a pure clock advance:
// no event to run and no virtual expiry inside the bound. Callers on the
// shard loops pair it with AdvanceTo to skip the RunUntil call — the two
// halves together replicate exactly what RunUntil does in that case, so
// the guarded and unguarded forms are interchangeable call for call. Both
// halves are small enough to inline.
//
//moca:hotpath
func (q *Queue) QuietUntil(t Time) bool {
	return q.minAt > t
}

// refreshMin recomputes the cached earliest pending timestamp. Called
// after every heap or virt mutation; the peek is trivial next to the
// heap work those already did.
//
//moca:hotpath
func (q *Queue) refreshMin() {
	m := farFuture
	if len(q.heap) > 0 {
		m = q.pool[q.heap[0]].at
	}
	q.heapMin = m
	if len(q.virt) > 0 && q.virt[0].at < m {
		m = q.virt[0].at
	}
	q.minAt = m
}

// AdvanceTo moves the clock forward to t without running anything. Only
// valid when QuietUntil(t) holds; see QuietUntil.
//
//moca:hotpath
func (q *Queue) AdvanceTo(t Time) {
	if q.now < t {
		q.now = t
	}
}

// RunUntil executes every event with timestamp <= t (including events those
// events schedule, if they also fall within t) and then advances Now to t.
// It returns the number of events executed.
//
//moca:hotpath
func (q *Queue) RunUntil(t Time) int {
	n := 0
	// RunOne's body, inlined: the simulator calls RunUntil once per shard
	// per window, so the per-event peek/call overhead is hot.
	for len(q.heap) > 0 {
		i := q.heap[0]
		r := &q.pool[i]
		if r.at > t {
			break
		}
		q.expireBefore(r)
		at, h, op, i64, p, wake := r.at, r.h, r.op, r.i64, r.p, r.wake
		q.popMin()
		q.releaseRec(i)
		q.now = at
		if !wake {
			q.runs++
			if q.obsExecuted != nil {
				q.obsExecuted.Inc()
			}
		}
		h.OnEvent(at, op, i64, p)
		n++
	}
	for len(q.virt) > 0 && q.virt[0].at <= t {
		q.expireOne()
	}
	if q.now < t {
		q.now = t
	}
	return n
}

// Drain runs events until the queue is empty and returns the number
// executed (expired virtual events included). Useful at the end of a
// simulation to let in-flight memory traffic settle.
func (q *Queue) Drain() int {
	n := 0
	for q.RunOne() {
		n++
	}
	for len(q.virt) > 0 {
		if at := q.virt[0].at; at > q.now {
			q.now = at
		}
		q.expireOne()
		n++
	}
	return n
}

// less orders the heap: time first, then normal events before wakes, then
// FIFO by schedule order (wakes: virtual schedule time, then arming order).
//moca:hotpath
func (q *Queue) less(a, b int32) bool {
	ra, rb := &q.pool[a], &q.pool[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	if ra.wake != rb.wake {
		return rb.wake
	}
	if ra.wake && ra.s != rb.s {
		return ra.s < rb.s
	}
	return ra.ord < rb.ord
}

//moca:hotpath
func (q *Queue) push(i int32) {
	q.heap = append(q.heap, i)
	pos := len(q.heap) - 1
	q.pool[i].pos = int32(pos)
	q.up(pos)
	// Inserting can only lower the minimum, and to exactly this record's
	// timestamp — no need for refreshMin's head reads.
	at := q.pool[i].at
	if len(q.heap) == 1 || at < q.heapMin {
		q.heapMin = at
	}
	if at < q.minAt {
		q.minAt = at
	}
}

//moca:hotpath
func (q *Queue) popMin() {
	last := len(q.heap) - 1
	moved := q.heap[last]
	q.heap[0] = moved
	q.pool[moved].pos = 0
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	q.refreshMin()
}

// up sifts the element at heap position i toward the root; it reports
// whether the element moved.
//moca:hotpath
func (q *Queue) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(q.heap[i], q.heap[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

//moca:hotpath
func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		smallest := i
		first := 4*i + 1
		end := first + 4
		if end > n {
			end = n
		}
		for c := first; c < end; c++ {
			if q.less(q.heap[c], q.heap[smallest]) {
				smallest = c
			}
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

//moca:hotpath
func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pool[q.heap[i]].pos = int32(i)
	q.pool[q.heap[j]].pos = int32(j)
}
