package mem

import "moca/internal/event"

// DoneSink receives request completions from a controller. It replaces a
// per-request closure on the hot path: the submitter registers itself once
// and distinguishes requests by token (for a cache hierarchy, the line
// address), so pooled requests complete without allocating.
type DoneSink interface {
	MemDone(token uint64, at event.Time)
}

// Request is one line-sized memory access presented to a channel
// controller. Addr is module-local (the byte offset within the module);
// translating a global physical address to (module, offset) is the memory
// system's job, mirroring how page placement selects the channel in the
// paper's heterogeneous system.
type Request struct {
	Addr  uint64
	Write bool

	// Core and Obj identify the requester and the memory object the line
	// belongs to, for statistics attribution. Both are opaque here.
	Core int
	Obj  uint64

	// Done, if non-nil, is invoked exactly once when the access completes
	// (data burst finished plus the channel's backend latency). Requests
	// submitted through EnqueueLine use a DoneSink instead.
	Done func(r *Request, at event.Time)

	// Timestamps filled in by the controller.
	Arrive     event.Time // enqueue time at the controller
	FirstCmd   event.Time // when the first command for this request issued
	DataFinish event.Time // end of the data burst

	bank int
	row  uint64

	// Completion sink for pooled requests (EnqueueLine path).
	sink  DoneSink
	token uint64

	// Intrusive queue links: the controller keeps every pending request on
	// a global FIFO list and on its bank's list, both in arrival order, so
	// scheduling scans touch only the relevant bank and removal is O(1).
	nextQ, prevQ *Request
	nextB, prevB *Request
	qSeq         uint64 // global age stamp for cross-bank oldest-first picks

	pooled bool // owned by the controller free list; recycled after Done
}

// QueueDelay is the time the request waited before its first command.
func (r *Request) QueueDelay() event.Time { return r.FirstCmd - r.Arrive }

// ServiceTime is the time from first command to the end of the data burst.
func (r *Request) ServiceTime() event.Time { return r.DataFinish - r.FirstCmd }

// TotalLatency is the controller-visible latency of the request.
func (r *Request) TotalLatency() event.Time { return r.DataFinish - r.Arrive }
