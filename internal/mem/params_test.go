package mem

import (
	"testing"

	"moca/internal/event"
)

func TestPresetsValidate(t *testing.T) {
	for _, k := range Kinds() {
		p := Preset(k)
		if err := p.Validate(); err != nil {
			t.Errorf("%s preset invalid: %v", k, err)
		}
		if p.Kind != k {
			t.Errorf("%s preset Kind = %v", k, p.Kind)
		}
		if p.Name != k.String() {
			t.Errorf("preset name %q != kind string %q", p.Name, k)
		}
	}
}

func TestPresetTableIIValues(t *testing.T) {
	// Spot-check the Table II values that drive the experiments.
	d := Preset(DDR3)
	if d.Timing.TCK != 1070 {
		t.Errorf("DDR3 tCK = %d ps, want 1070", d.Timing.TCK)
	}
	if d.Timing.TRC != 48750 {
		t.Errorf("DDR3 tRC = %d ps, want 48750", d.Timing.TRC)
	}
	if d.Geometry.Banks != 8 || d.Geometry.RowBufferBytes != 128 {
		t.Errorf("DDR3 geometry = %+v", d.Geometry)
	}

	r := Preset(RLDRAM)
	if r.Timing.TRC != 8*event.Nanosecond {
		t.Errorf("RLDRAM tRC = %d, want 8 ns", r.Timing.TRC)
	}
	if r.Geometry.Banks != 16 || r.Geometry.RowBufferBytes != 16 {
		t.Errorf("RLDRAM geometry = %+v", r.Geometry)
	}
	// The text-driven power substitution: RLDRAM = 4.5x DDR3.
	if r.Power.ActiveWattPerGB <= d.Power.ActiveWattPerGB*4 {
		t.Errorf("RLDRAM active power %v should be >4x DDR3 %v per the paper's text",
			r.Power.ActiveWattPerGB, d.Power.ActiveWattPerGB)
	}

	h := Preset(HBM)
	if h.Timing.CommandsPerTick != 8 {
		t.Errorf("HBM should model the dual command bus (8 cmds/tick), got %d", h.Timing.CommandsPerTick)
	}
	if h.Geometry.RowBufferBytes != 2048 {
		t.Errorf("HBM row buffer = %d, want 2048", h.Geometry.RowBufferBytes)
	}

	l := Preset(LPDDR2)
	if l.Power.StandbyMilliwattPerGB != 100 || l.Power.ActiveWattPerGB != 0.4 {
		t.Errorf("LPDDR2 power = %+v", l.Power)
	}
}

func TestLatencyOrdering(t *testing.T) {
	// RLDRAM must have the lowest unloaded latency; that is its entire
	// reason for existing in the heterogeneous system.
	q := event.NewQueue()
	lat := map[Kind]event.Time{}
	for _, k := range Kinds() {
		c, err := NewController(k.String(), q, ChannelConfig{Device: Preset(k), CapacityBytes: 1 << 28})
		if err != nil {
			t.Fatal(err)
		}
		lat[k] = c.IdealReadLatency()
	}
	if !(lat[RLDRAM] < lat[DDR3] && lat[RLDRAM] < lat[HBM] && lat[RLDRAM] < lat[LPDDR2]) {
		t.Errorf("RLDRAM ideal latency %v not lowest: %v", lat[RLDRAM], lat)
	}
	if !(lat[LPDDR2] >= lat[DDR3]) {
		t.Errorf("LPDDR2 latency %v should be >= DDR3 %v", lat[LPDDR2], lat[DDR3])
	}
}

func TestBandwidthOrdering(t *testing.T) {
	// HBM must offer the highest peak bandwidth per channel.
	q := event.NewQueue()
	bw := map[Kind]float64{}
	for _, k := range Kinds() {
		c, err := NewController(k.String(), q, ChannelConfig{Device: Preset(k), CapacityBytes: 1 << 28})
		if err != nil {
			t.Fatal(err)
		}
		bw[k] = c.PeakBandwidthGBps()
	}
	for _, k := range []Kind{DDR3, RLDRAM, LPDDR2} {
		if bw[HBM] <= bw[k] {
			t.Errorf("HBM peak bandwidth %.1f not above %s %.1f", bw[HBM], k, bw[k])
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*DeviceParams){
		func(p *DeviceParams) { p.Geometry.Banks = 3 },
		func(p *DeviceParams) { p.Geometry.Banks = 0 },
		func(p *DeviceParams) { p.Geometry.RowBufferBytes = 100 },
		func(p *DeviceParams) { p.Geometry.Rows = 0 },
		func(p *DeviceParams) { p.Timing.TCK = 0 },
		func(p *DeviceParams) { p.Timing.TRC = p.Timing.TRAS - 1 },
		func(p *DeviceParams) { p.Timing.BurstLength = 3; p.Timing.DataRate = 2 },
		func(p *DeviceParams) { p.Timing.CommandsPerTick = 0 },
		func(p *DeviceParams) { p.Timing.TREFI = -1 },
		func(p *DeviceParams) { p.Timing.TCASWrite = -1 },
		func(p *DeviceParams) { p.Timing.TWR = -1 },
		func(p *DeviceParams) { p.Timing.TRCD = -1 },
	}
	for i, mutate := range cases {
		p := Preset(DDR3)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: mutated params validated successfully", i)
		}
	}
}

func TestBurstTime(t *testing.T) {
	tm := Timing{TCK: 1000, BurstLength: 8, DataRate: 2}
	if got := tm.BurstTime(); got != 4000 {
		t.Errorf("BurstTime = %d, want 4000", got)
	}
}

func TestKindString(t *testing.T) {
	if DDR3.String() != "DDR3" || LPDDR2.String() != "LPDDR2" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestPCMPreset(t *testing.T) {
	p := Preset(PCM)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Timing.TREFI != 0 {
		t.Error("PCM should not refresh (non-volatile)")
	}
	if p.Timing.TCASWrite <= p.Timing.TCAS {
		t.Error("PCM writes should be slower than reads")
	}
	if p.Timing.TWR == 0 {
		t.Error("PCM should have a write-recovery window")
	}
	if p.Power.StandbyMilliwattPerGB >= Preset(LPDDR2).Power.StandbyMilliwattPerGB {
		t.Error("PCM standby should undercut LPDDR2")
	}
}

func TestPCMWriteAsymmetry(t *testing.T) {
	// A dependent chain of reads must finish far sooner than the same
	// chain of writes on PCM; on DDR3 the two are nearly identical.
	chain := func(kind Kind, write bool) event.Time {
		q := event.NewQueue()
		c, _ := NewController("t", q, ChannelConfig{Device: Preset(kind), CapacityBytes: 1 << 26})
		var finish event.Time
		var issue func(n int)
		issue = func(n int) {
			if n == 0 {
				return
			}
			r := &Request{Addr: uint64(n) * 4096, Write: write}
			r.Done = func(_ *Request, at event.Time) {
				finish = at
				issue(n - 1)
			}
			c.Enqueue(r)
		}
		issue(32)
		q.Drain()
		return finish
	}
	pcmR, pcmW := chain(PCM, false), chain(PCM, true)
	if pcmW < pcmR*2 {
		t.Errorf("PCM writes (%d) not much slower than reads (%d)", pcmW, pcmR)
	}
	d3R, d3W := chain(DDR3, false), chain(DDR3, true)
	if d3W > d3R*3/2 {
		t.Errorf("DDR3 writes (%d) unexpectedly slower than reads (%d)", d3W, d3R)
	}
}

func TestPCMNoRefreshEvents(t *testing.T) {
	q := event.NewQueue()
	c, _ := NewController("t", q, ChannelConfig{Device: Preset(PCM), CapacityBytes: 1 << 26})
	c.Enqueue(&Request{Addr: 0})
	q.RunUntil(50 * event.Microsecond)
	c.Enqueue(&Request{Addr: 4096})
	q.Drain()
	if st := c.Stats(); st.Refreshes != 0 {
		t.Errorf("PCM refreshed %d times", st.Refreshes)
	}
}

func TestPCMWriteRecoveryBlocksBank(t *testing.T) {
	// A read to the same bank right after a write must wait out tWR.
	q := event.NewQueue()
	c, _ := NewController("t", q, ChannelConfig{Device: Preset(PCM), CapacityBytes: 1 << 26})
	var writeDone, readDone event.Time
	w := &Request{Addr: 0, Write: true}
	w.Done = func(_ *Request, at event.Time) { writeDone = at }
	r := &Request{Addr: 64} // same row, same bank
	r.Done = func(_ *Request, at event.Time) { readDone = at }
	c.Enqueue(w)
	c.Enqueue(r)
	q.Drain()
	if readDone-writeDone < Preset(PCM).Timing.TWR/2 {
		t.Errorf("read completed %d ps after write; expected to wait ~tWR (%d)",
			readDone-writeDone, Preset(PCM).Timing.TWR)
	}
}
