// Package mem models heterogeneous DRAM modules at command-level timing
// fidelity: per-bank row-buffer state, ACT/PRE/CAS command scheduling with
// FR-FCFS arbitration, shared data-bus occupancy, and periodic refresh.
//
// One Controller models one memory channel driving one module, matching the
// paper's system where every channel has a dedicated controller because the
// device timing parameters differ across module kinds (§V-C).
package mem

import (
	"fmt"

	"moca/internal/event"
)

// Kind identifies a memory module technology from Table II of the paper.
type Kind int

const (
	// DDR3 is the baseline commodity module.
	DDR3 Kind = iota
	// HBM is the 2.5D-stacked high-bandwidth module (bandwidth-optimized).
	HBM
	// RLDRAM is the reduced-latency module (latency-optimized).
	RLDRAM
	// LPDDR2 is the low-power module (power-optimized).
	LPDDR2
	// PCM is a phase-change non-volatile module: an extension beyond the
	// paper's Table II, modeling the capacity tier of the related data-
	// tiering work the paper positions itself against (Section VII;
	// Dulloor et al., EuroSys 2016). Reads are slow, writes much slower,
	// standby power near zero (no refresh).
	PCM
	// DDR4 is the commodity module of the Knights Landing generation
	// (Section II: KNL pairs on-package HBM with off-chip DDR4) — an
	// extension beyond Table II for the KNL-style experiment.
	DDR4
)

var kindNames = [...]string{"DDR3", "HBM", "RLDRAM", "LPDDR2", "PCM", "DDR4"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds lists all module technologies in Table II order; PCM (an
// extension beyond the table) is last.
func Kinds() []Kind { return []Kind{DDR3, HBM, RLDRAM, LPDDR2, PCM, DDR4} }

// Timing holds device timing parameters. All durations are picoseconds.
type Timing struct {
	TCK  event.Time // clock period
	TRCD event.Time // activate to CAS delay
	TRAS event.Time // activate to precharge delay
	TRC  event.Time // activate to activate delay (same bank)
	TRFC event.Time // refresh cycle time
	TRP  event.Time // precharge period (Table II omits it; presets use TRCD)
	TCAS event.Time // CAS to first data (Table II omits CL; presets use TRCD)

	TREFI event.Time // refresh interval (JEDEC 7.8 us; 0 disables refresh)

	// TCASWrite is the CAS-to-data delay for writes (0 = same as TCAS).
	// TWR is the write-recovery time added to the bank's activate and
	// precharge windows after a write burst (0 = none). Together they
	// model write-asymmetric technologies such as PCM.
	TCASWrite event.Time
	TWR       event.Time

	BurstLength int // beats per access
	DataRate    int // beats per clock (2 = double data rate)

	// CommandsPerTick is how many commands the controller may issue per
	// clock. HBM's dual command bus (§II-A) issues 2; everything else 1.
	CommandsPerTick int
}

// BurstTime returns the data-bus occupancy of one burst.
func (t Timing) BurstTime() event.Time {
	return event.Time(t.BurstLength/t.DataRate) * t.TCK
}

// PowerParams holds the capacity-normalized power figures from Table II.
type PowerParams struct {
	StandbyMilliwattPerGB float64
	ActiveWattPerGB       float64
}

// Geometry describes the module's internal organization.
type Geometry struct {
	Banks           int
	RowBufferBytes  int // bytes per row buffer (column span)
	Rows            int
	DeviceWidthBits int // width of one device chip (Table II)
	// ChannelBits is the aggregate data-bus width the controller drives:
	// 64 for a DDR3 DIMM (8 x8 devices), 1024 for a full HBM stack, 32
	// for RLDRAM and LPDDR2 point-to-point links. This is what separates
	// the modules' peak bandwidths.
	ChannelBits int
}

// DeviceParams fully describes one module technology.
type DeviceParams struct {
	Name     string
	Kind     Kind
	Geometry Geometry
	Timing   Timing
	Power    PowerParams
}

// Validate reports a configuration error, if any.
func (p DeviceParams) Validate() error {
	g, t := p.Geometry, p.Timing
	switch {
	case g.Banks <= 0 || g.Banks&(g.Banks-1) != 0:
		return fmt.Errorf("mem: %s: banks must be a positive power of two, got %d", p.Name, g.Banks)
	case g.RowBufferBytes <= 0 || g.RowBufferBytes&(g.RowBufferBytes-1) != 0:
		return fmt.Errorf("mem: %s: row buffer bytes must be a positive power of two, got %d", p.Name, g.RowBufferBytes)
	case g.Rows <= 0:
		return fmt.Errorf("mem: %s: rows must be positive, got %d", p.Name, g.Rows)
	case g.ChannelBits < 8 || g.ChannelBits%8 != 0:
		return fmt.Errorf("mem: %s: channel bits must be a positive multiple of 8, got %d", p.Name, g.ChannelBits)
	case t.TCK <= 0:
		return fmt.Errorf("mem: %s: tCK must be positive", p.Name)
	case t.TRCD < 0 || t.TRAS < 0 || t.TRC < 0 || t.TRFC < 0 || t.TRP < 0 || t.TCAS < 0:
		return fmt.Errorf("mem: %s: negative timing parameter", p.Name)
	case t.TRC < t.TRAS:
		return fmt.Errorf("mem: %s: tRC (%d) < tRAS (%d)", p.Name, t.TRC, t.TRAS)
	case t.BurstLength <= 0 || t.DataRate <= 0 || t.BurstLength%t.DataRate != 0:
		return fmt.Errorf("mem: %s: burst length %d not a multiple of data rate %d", p.Name, t.BurstLength, t.DataRate)
	case t.CommandsPerTick <= 0:
		return fmt.Errorf("mem: %s: commands per tick must be positive", p.Name)
	case t.TREFI < 0:
		return fmt.Errorf("mem: %s: negative tREFI", p.Name)
	case t.TCASWrite < 0 || t.TWR < 0:
		return fmt.Errorf("mem: %s: negative write timing", p.Name)
	}
	return nil
}

const (
	ns = event.Nanosecond
	us = event.Microsecond
)

// Preset returns the Table II parameters for the given module kind (plus
// the PCM and DDR4 extensions, which have no table row).
//
// Deliberate deviations from the OCR'd table, all recorded in DESIGN.md:
//   - Table II omits tRP and CL; both default to tRCD, a standard
//     approximation for these devices.
//   - RLDRAM power is set to 5x the DDR3 figures per the paper's text
//     ("static and dynamic power consumption of RLDRAM is 4-5x higher");
//     the table row contradicts the text and the paper's own results.
//   - LPDDR2 standby is raised from the table's self-refresh figure to a
//     clocked active-standby level (0.4x DDR3 per GB), which the paper's
//     own Fig. 9/11 shapes require.
//   - Channel widths, HBM stack internals (64 banks, 8 commands/clock),
//     and the RLDRAM 64-bit channel are modeling additions the table does
//     not specify; see the Geometry comments.
func Preset(kind Kind) DeviceParams {
	switch kind {
	case DDR3:
		return DeviceParams{
			Name: "DDR3",
			Kind: DDR3,
			Geometry: Geometry{
				Banks: 8, RowBufferBytes: 128, Rows: 32 * 1024, DeviceWidthBits: 8,
				ChannelBits: 64,
			},
			Timing: Timing{
				TCK: 1070, TRAS: 35 * ns, TRCD: 13750, TRC: 48750, TRFC: 160 * ns,
				TRP: 13750, TCAS: 13750, TREFI: 7800 * ns,
				BurstLength: 8, DataRate: 2, CommandsPerTick: 1,
			},
			Power: PowerParams{StandbyMilliwattPerGB: 256, ActiveWattPerGB: 1.5},
		}
	case HBM:
		return DeviceParams{
			Name: "HBM",
			Kind: HBM,
			Geometry: Geometry{
				// One controller drives the whole stack: 8 internal
				// channels x 8 banks (JESD235), modeled as 64
				// scheduler-visible banks ("more channels per device",
				// paper Section II-A). RowBufferBytes is per bank.
				Banks: 64, RowBufferBytes: 2048, Rows: 32 * 1024, DeviceWidthBits: 128,
				ChannelBits: 1024,
			},
			Timing: Timing{
				TCK: 2000, TRAS: 33 * ns, TRCD: 15 * ns, TRC: 48 * ns, TRFC: 160 * ns,
				TRP: 15 * ns, TCAS: 15 * ns, TREFI: 7800 * ns,
				// 8 internal channels each issue a command per clock; the
				// dual command bus doubles nothing further here.
				BurstLength: 4, DataRate: 2, CommandsPerTick: 8,
			},
			Power: PowerParams{StandbyMilliwattPerGB: 335, ActiveWattPerGB: 4.5},
		}
	case RLDRAM:
		return DeviceParams{
			Name: "RLDRAM",
			Kind: RLDRAM,
			Geometry: Geometry{
				// A 72-bit (64 data) RLDRAM3 UDIMM-style channel: the
				// switch/router boards the paper cites gang devices for
				// bandwidth, and Fig. 10 needs Homogen-RL to stay the
				// fastest system under 4-core load.
				Banks: 16, RowBufferBytes: 16, Rows: 8 * 1024, DeviceWidthBits: 8,
				ChannelBits: 64,
			},
			Timing: Timing{
				TCK: 930, TRAS: 6 * ns, TRCD: 2 * ns, TRC: 8 * ns, TRFC: 110 * ns,
				TRP: 2 * ns, TCAS: 2 * ns, TREFI: 7800 * ns,
				BurstLength: 8, DataRate: 2, CommandsPerTick: 1,
			},
			// The text's "static and dynamic power consumption of RLDRAM is
			// 4-5x higher than a DDR3/DDR4 module": both figures are 5x the
			// DDR3 row (see DESIGN.md on the OCR-damaged table row).
			Power: PowerParams{StandbyMilliwattPerGB: 1280, ActiveWattPerGB: 7.5},
		}
	case LPDDR2:
		return DeviceParams{
			Name: "LPDDR2",
			Kind: LPDDR2,
			Geometry: Geometry{
				Banks: 8, RowBufferBytes: 1024, Rows: 8 * 1024, DeviceWidthBits: 32,
				ChannelBits: 32,
			},
			Timing: Timing{
				TCK: 1875, TRAS: 42 * ns, TRCD: 15 * ns, TRC: 60 * ns, TRFC: 130 * ns,
				TRP: 15 * ns, TCAS: 15 * ns, TREFI: 7800 * ns,
				BurstLength: 4, DataRate: 2, CommandsPerTick: 1,
			},
			// Table II's OCR'd 6.5 mW/GB is LPDDR2 self-refresh; the
			// clocked active-standby figure (IDD3N-level) is far higher,
			// and the paper's own Fig. 9 LP bars imply substantial
			// background power. Calibrated to ~0.4x DDR3 per GB.
			Power: PowerParams{StandbyMilliwattPerGB: 100, ActiveWattPerGB: 0.4},
		}
	case PCM:
		return DeviceParams{
			Name: "PCM",
			Kind: PCM,
			Geometry: Geometry{
				Banks: 8, RowBufferBytes: 1024, Rows: 64 * 1024, DeviceWidthBits: 8,
				ChannelBits: 64,
			},
			Timing: Timing{
				// ~55 ns array reads, ~150 ns cell writes plus a long
				// write-recovery window; non-volatile, so no refresh.
				TCK: 1250, TRAS: 60 * ns, TRCD: 55 * ns, TRC: 115 * ns, TRFC: 0,
				TRP: 10 * ns, TCAS: 12500, TREFI: 0,
				TCASWrite: 150 * ns, TWR: 250 * ns,
				BurstLength: 8, DataRate: 2, CommandsPerTick: 1,
			},
			// Near-zero standby (no refresh, no charge pumps idling);
			// write energy dominates and is folded into the active rate.
			Power: PowerParams{StandbyMilliwattPerGB: 10, ActiveWattPerGB: 3.0},
		}
	case DDR4:
		return DeviceParams{
			Name: "DDR4",
			Kind: DDR4,
			Geometry: Geometry{
				// DDR4-2400 DIMM: 16 banks (4 groups x 4), 64-bit channel.
				Banks: 16, RowBufferBytes: 1024, Rows: 32 * 1024, DeviceWidthBits: 8,
				ChannelBits: 64,
			},
			Timing: Timing{
				TCK: 833, TRAS: 32 * ns, TRCD: 14160, TRC: 46 * ns, TRFC: 350 * ns,
				TRP: 14160, TCAS: 14160, TREFI: 7800 * ns,
				BurstLength: 8, DataRate: 2, CommandsPerTick: 1,
			},
			Power: PowerParams{StandbyMilliwattPerGB: 190, ActiveWattPerGB: 1.2},
		}
	default:
		panic(fmt.Sprintf("mem: unknown kind %d", int(kind)))
	}
}
