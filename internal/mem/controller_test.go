package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"moca/internal/event"
)

func newTestController(t *testing.T, kind Kind, sched Scheduler) (*event.Queue, *Controller) {
	t.Helper()
	q := event.NewQueue()
	c, err := NewController("test", q, ChannelConfig{
		Device:        Preset(kind),
		CapacityBytes: 1 << 28,
		Scheduler:     sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	return q, c
}

// run issues the given requests and drains the queue, returning completion
// times in completion order.
func run(q *event.Queue, c *Controller, reqs []*Request) []event.Time {
	var done []event.Time
	for _, r := range reqs {
		r.Done = func(_ *Request, at event.Time) { done = append(done, at) }
		if !c.Enqueue(r) {
			panic("enqueue rejected in test")
		}
	}
	q.Drain()
	return done
}

func TestSingleReadLatency(t *testing.T) {
	q, c := newTestController(t, DDR3, FRFCFS)
	done := run(q, c, []*Request{{Addr: 0}})
	if len(done) != 1 {
		t.Fatalf("completed %d requests, want 1", len(done))
	}
	// Closed bank: frontend + (>=0 queue) + tRCD + tCAS + burst + backend.
	// The command-level model may add up to a few tCK of command latency.
	min := c.IdealReadLatency()
	max := min + 4*c.Config().Device.Timing.TCK
	if done[0] < min || done[0] > max {
		t.Errorf("first read completed at %d ps, want in [%d,%d]", done[0], min, max)
	}
	st := c.Stats()
	if st.Reads != 1 || st.Writes != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.RowMisses != 1 || st.RowHits != 0 {
		t.Errorf("expected one row miss: %+v", st)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	q, c := newTestController(t, DDR3, FRFCFS)
	rb := uint64(c.Config().Device.Geometry.RowBufferBytes)
	// Two sequential accesses in the same row, then one to another row of
	// the same bank (row conflict).
	done := run(q, c, []*Request{
		{Addr: 0},
		{Addr: 64},
		{Addr: rb * uint64(c.Config().Device.Geometry.Banks) * 7}, // same bank 0, different row
	})
	if len(done) != 3 {
		t.Fatalf("completed %d, want 3", len(done))
	}
	st := c.Stats()
	if st.RowHits < 1 {
		t.Errorf("expected at least one row hit, got %+v", st)
	}
	if st.RowConflict < 1 {
		t.Errorf("expected a row conflict, got %+v", st)
	}
	hitGap := done[1] - done[0]
	confGap := done[2] - done[1]
	if hitGap >= confGap {
		t.Errorf("row hit gap %d should be < conflict gap %d", hitGap, confGap)
	}
}

func TestBankParallelismBeatsSingleBank(t *testing.T) {
	// N row-miss requests spread over distinct banks must finish sooner
	// than N row-conflict requests hammering one bank.
	elapsed := func(spread bool) event.Time {
		q := event.NewQueue()
		c, _ := NewController("t", q, ChannelConfig{Device: Preset(DDR3), CapacityBytes: 1 << 28})
		g := c.Config().Device.Geometry
		rb, banks := uint64(g.RowBufferBytes), uint64(g.Banks)
		var reqs []*Request
		for i := uint64(0); i < 8; i++ {
			var addr uint64
			if spread {
				addr = i*rb + i*rb*banks // distinct banks, distinct rows
			} else {
				addr = i * rb * banks // bank 0, distinct rows
			}
			reqs = append(reqs, &Request{Addr: addr})
		}
		done := run(q, c, reqs)
		last := done[0]
		for _, d := range done {
			if d > last {
				last = d
			}
		}
		return last
	}
	spread, serial := elapsed(true), elapsed(false)
	if spread >= serial {
		t.Errorf("bank-parallel run (%d ps) not faster than single-bank run (%d ps)", spread, serial)
	}
}

func TestRLDRAMFasterThanDDR3UnderPointerChase(t *testing.T) {
	// Serialized (dependent) random accesses: each enqueued after the
	// previous completes. RLDRAM's short tRC must win.
	chase := func(kind Kind) event.Time {
		q := event.NewQueue()
		c, _ := NewController("t", q, ChannelConfig{Device: Preset(kind), CapacityBytes: 1 << 28})
		rng := rand.New(rand.NewSource(1))
		var finish event.Time
		var issue func(n int)
		issue = func(n int) {
			if n == 0 {
				return
			}
			r := &Request{Addr: uint64(rng.Intn(1<<26)) &^ 63}
			r.Done = func(_ *Request, at event.Time) {
				finish = at
				issue(n - 1)
			}
			c.Enqueue(r)
		}
		issue(64)
		q.Drain()
		return finish
	}
	rl, d3 := chase(RLDRAM), chase(DDR3)
	if rl >= d3 {
		t.Errorf("RLDRAM chase time %d >= DDR3 %d", rl, d3)
	}
}

func TestHBMHigherThroughputThanDDR3(t *testing.T) {
	// A burst of independent streaming requests: HBM should sustain more
	// bandwidth (finish sooner).
	stream := func(kind Kind) event.Time {
		q := event.NewQueue()
		c, _ := NewController("t", q, ChannelConfig{Device: Preset(kind), CapacityBytes: 1 << 28})
		var reqs []*Request
		for i := 0; i < 100; i++ {
			reqs = append(reqs, &Request{Addr: uint64(i) * 64})
		}
		done := run(q, c, reqs)
		var last event.Time
		for _, d := range done {
			if d > last {
				last = d
			}
		}
		return last
	}
	hbm, d3 := stream(HBM), stream(DDR3)
	if hbm >= d3 {
		t.Errorf("HBM stream time %d >= DDR3 %d", hbm, d3)
	}
}

func TestFCFSSlowerOrEqualOnConflictMix(t *testing.T) {
	mix := func(s Scheduler) event.Time {
		q := event.NewQueue()
		c, _ := NewController("t", q, ChannelConfig{Device: Preset(DDR3), CapacityBytes: 1 << 28, Scheduler: s})
		g := c.Config().Device.Geometry
		rowSpan := uint64(g.RowBufferBytes) * uint64(g.Banks)
		var reqs []*Request
		// Interleave row-conflicting and row-hitting requests on bank 0.
		for i := uint64(0); i < 32; i++ {
			if i%2 == 0 {
				reqs = append(reqs, &Request{Addr: (i % 4) * rowSpan})
			} else {
				reqs = append(reqs, &Request{Addr: 64 * (i % 2)})
			}
		}
		done := run(q, c, reqs)
		var last event.Time
		for _, d := range done {
			if d > last {
				last = d
			}
		}
		return last
	}
	if frfcfs, fcfs := mix(FRFCFS), mix(FCFS); frfcfs > fcfs {
		t.Errorf("FR-FCFS (%d) slower than FCFS (%d) on a row-locality mix", frfcfs, fcfs)
	}
}

func TestWriteCompletes(t *testing.T) {
	q, c := newTestController(t, LPDDR2, FRFCFS)
	done := run(q, c, []*Request{{Addr: 4096, Write: true}})
	if len(done) != 1 {
		t.Fatalf("write did not complete")
	}
	if st := c.Stats(); st.Writes != 1 || st.Reads != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBackpressure(t *testing.T) {
	q := event.NewQueue()
	c, _ := NewController("t", q, ChannelConfig{Device: Preset(DDR3), CapacityBytes: 1 << 28, MaxQueue: 4})
	accepted := 0
	for i := 0; i < 10; i++ {
		if c.Enqueue(&Request{Addr: uint64(i) * 64}) {
			accepted++
		}
	}
	if accepted > 4 {
		t.Errorf("accepted %d requests with MaxQueue=4", accepted)
	}
	q.Drain()
	if !c.Enqueue(&Request{Addr: 0}) {
		t.Error("enqueue rejected after drain")
	}
	q.Drain()
}

func TestRefreshOccurs(t *testing.T) {
	q, c := newTestController(t, DDR3, FRFCFS)
	// Issue sparse traffic across several tREFI intervals.
	var reqs []*Request
	for i := 0; i < 3; i++ {
		reqs = append(reqs, &Request{Addr: uint64(i) * 64})
	}
	for _, r := range reqs {
		c.Enqueue(r)
	}
	q.RunUntil(20 * event.Microsecond)
	c.Enqueue(&Request{Addr: 1 << 20})
	q.Drain()
	if st := c.Stats(); st.Refreshes == 0 {
		t.Errorf("no refreshes after 20 us (tREFI = 7.8 us): %+v", st)
	}
}

func TestStatsLatencyAccounting(t *testing.T) {
	q, c := newTestController(t, DDR3, FRFCFS)
	run(q, c, []*Request{{Addr: 0}, {Addr: 64}, {Addr: 128}})
	st := c.Stats()
	if st.Requests() != 3 {
		t.Fatalf("requests = %d", st.Requests())
	}
	if st.TotalLatency != st.TotalQueueing+st.TotalService {
		t.Errorf("latency %d != queueing %d + service %d", st.TotalLatency, st.TotalQueueing, st.TotalService)
	}
	if st.AvgLatency() <= 0 {
		t.Errorf("avg latency = %d", st.AvgLatency())
	}
	c.ResetStats()
	if c.Stats().Requests() != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestStarvationBound(t *testing.T) {
	// A stream of row hits must not starve a conflicting request beyond
	// the starvation limit.
	q := event.NewQueue()
	c, _ := NewController("t", q, ChannelConfig{
		Device: Preset(DDR3), CapacityBytes: 1 << 28, StarvationLimit: 500 * ns,
	})
	g := c.Config().Device.Geometry
	rowSpan := uint64(g.RowBufferBytes) * uint64(g.Banks)

	var victimDone event.Time
	victim := &Request{Addr: 5 * rowSpan} // bank 0, row 5
	victim.Done = func(_ *Request, at event.Time) { victimDone = at }

	// Sustained row hits to bank 0 row 0: re-enqueue on completion.
	hits := 0
	var feed func()
	feed = func() {
		if hits >= 400 {
			return
		}
		hits++
		r := &Request{Addr: uint64(hits%2) * 64}
		r.Done = func(_ *Request, _ event.Time) { feed() }
		c.Enqueue(r)
	}
	// Prime several hits so the queue always holds a row-hit candidate.
	for i := 0; i < 8; i++ {
		feed()
	}
	c.Enqueue(victim)
	q.Drain()
	if victimDone == 0 {
		t.Fatal("victim request never completed")
	}
	if victimDone > 2*event.Microsecond {
		t.Errorf("victim starved for %d ps despite 500 ns starvation limit", victimDone)
	}
}

// Property: every request eventually completes exactly once, and data
// bursts never overlap on the shared bus.
func TestPropertyAllCompleteNoBusOverlap(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%64) + 1
		q := event.NewQueue()
		c, _ := NewController("t", q, ChannelConfig{Device: Preset(DDR3), CapacityBytes: 1 << 28, MaxQueue: 256})
		rng := rand.New(rand.NewSource(seed))
		burst := c.Config().Device.Timing.BurstTime()
		completions := 0
		type span struct{ start, end event.Time }
		var spans []span
		for i := 0; i < count; i++ {
			r := &Request{Addr: uint64(rng.Intn(1<<26)) &^ 63, Write: rng.Intn(4) == 0}
			r.Done = func(r *Request, _ event.Time) {
				completions++
				spans = append(spans, span{r.DataFinish - burst, r.DataFinish})
			}
			if !c.Enqueue(r) {
				return false
			}
		}
		q.Drain()
		if completions != count {
			return false
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.start < b.end && b.start < a.end {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: per-request latency always >= the unavoidable floor
// (frontend + tCAS + burst + backend) and queue+service == total.
func TestPropertyLatencyFloor(t *testing.T) {
	f := func(seed int64) bool {
		q := event.NewQueue()
		c, _ := NewController("t", q, ChannelConfig{Device: Preset(RLDRAM), CapacityBytes: 1 << 26})
		cfg := c.Config()
		floor := cfg.Device.Timing.TCAS + cfg.Device.Timing.BurstTime()
		rng := rand.New(rand.NewSource(seed))
		ok := true
		var reqs []*Request
		for i := 0; i < 24; i++ {
			r := &Request{Addr: uint64(rng.Intn(1<<24)) &^ 63}
			r.Done = func(r *Request, _ event.Time) {
				if r.TotalLatency() < floor {
					ok = false
				}
				if r.QueueDelay()+r.ServiceTime() != r.TotalLatency() {
					ok = false
				}
				if r.QueueDelay() < 0 {
					ok = false
				}
			}
			reqs = append(reqs, r)
			c.Enqueue(r)
		}
		q.Drain()
		_ = reqs
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNewControllerErrors(t *testing.T) {
	q := event.NewQueue()
	bad := Preset(DDR3)
	bad.Geometry.Banks = 5
	if _, err := NewController("x", q, ChannelConfig{Device: bad, CapacityBytes: 1 << 20}); err == nil {
		t.Error("invalid device accepted")
	}
	if _, err := NewController("x", q, ChannelConfig{Device: Preset(DDR3)}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func BenchmarkControllerStream(b *testing.B) {
	q := event.NewQueue()
	c, _ := NewController("bench", q, ChannelConfig{Device: Preset(DDR3), CapacityBytes: 1 << 28, MaxQueue: 256})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := &Request{Addr: uint64(i*64) % (1 << 28)}
		for !c.Enqueue(r) {
			q.RunOne()
		}
		if i%32 == 31 {
			q.Drain()
		}
	}
	q.Drain()
}

func TestClosedPageNoRowHits(t *testing.T) {
	q := event.NewQueue()
	c, _ := NewController("t", q, ChannelConfig{
		Device: Preset(DDR3), CapacityBytes: 1 << 28, RowPolicy: ClosedPage,
	})
	// Sequential same-row accesses: open-page would hit; closed must not.
	var reqs []*Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, &Request{Addr: uint64(i) * 64})
	}
	run(q, c, reqs)
	st := c.Stats()
	if st.RowHits != 0 {
		t.Errorf("closed-page produced %d row hits", st.RowHits)
	}
	if st.Precharges < 7 {
		t.Errorf("precharges = %d, want auto-precharge per access", st.Precharges)
	}
}

func TestClosedPageFasterForConflicts(t *testing.T) {
	// Alternating rows on one bank: closed-page skips the explicit
	// precharge wait.
	elapsed := func(p RowPolicy) event.Time {
		q := event.NewQueue()
		c, _ := NewController("t", q, ChannelConfig{
			Device: Preset(DDR3), CapacityBytes: 1 << 28, RowPolicy: p,
		})
		g := c.Config().Device.Geometry
		rowSpan := uint64(g.RowBufferBytes) * uint64(g.Banks)
		var last event.Time
		var issue func(n int)
		issue = func(n int) {
			if n == 0 {
				return
			}
			r := &Request{Addr: uint64(n%7) * rowSpan}
			r.Done = func(_ *Request, at event.Time) { last = at; issue(n - 1) }
			c.Enqueue(r)
		}
		issue(24)
		q.Drain()
		return last
	}
	open, closed := elapsed(OpenPage), elapsed(ClosedPage)
	if closed > open {
		t.Errorf("closed-page (%d) slower than open-page (%d) on a conflict chain", closed, open)
	}
}

func TestPageStripeSerializesStreams(t *testing.T) {
	// A page-sized stream: row-buffer striping spreads it over banks;
	// page striping pins it to one bank.
	banksTouched := func(stripe BankStripe) int {
		q := event.NewQueue()
		c, _ := NewController("t", q, ChannelConfig{
			Device: Preset(DDR3), CapacityBytes: 1 << 28, BankStripe: stripe,
		})
		seen := map[int]bool{}
		for i := 0; i < 64; i++ {
			r := &Request{Addr: uint64(i) * 64}
			c.mapAddress(r)
			seen[r.bank] = true
		}
		_ = q
		return len(seen)
	}
	if n := banksTouched(StripePage); n != 1 {
		t.Errorf("page stripe touched %d banks for one page, want 1", n)
	}
	if n := banksTouched(StripeRowBuffer); n < 4 {
		t.Errorf("row-buffer stripe touched only %d banks", n)
	}
}

func TestMappingPreservesDistinctness(t *testing.T) {
	// Distinct line addresses must map to distinct (bank,row,column)
	// coordinates under both stripings.
	for _, stripe := range []BankStripe{StripeRowBuffer, StripePage} {
		q := event.NewQueue()
		c, _ := NewController("t", q, ChannelConfig{
			Device: Preset(DDR3), CapacityBytes: 1 << 24, BankStripe: stripe,
		})
		seen := map[[3]uint64]uint64{}
		for addr := uint64(0); addr < 1<<20; addr += 64 {
			r := &Request{Addr: addr}
			c.mapAddress(r)
			col := addr % uint64(c.Config().Device.Geometry.RowBufferBytes)
			key := [3]uint64{uint64(r.bank), r.row, col}
			if prev, dup := seen[key]; dup {
				t.Fatalf("%v: addresses %#x and %#x collide at bank/row/col %v", stripe, prev, addr, key)
			}
			seen[key] = addr
		}
	}
}
