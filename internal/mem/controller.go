package mem

import (
	"fmt"

	"moca/internal/event"
	"moca/internal/obs"
)

// RowPolicy selects what happens to a row after a CAS completes.
type RowPolicy int

const (
	// OpenPage keeps rows open until a conflict or refresh closes them —
	// best when consecutive requests share rows (the default, and what
	// the paper's FR-FCFS configuration implies).
	OpenPage RowPolicy = iota
	// ClosedPage auto-precharges after every access — lower conflict
	// latency for random traffic at the cost of all row hits.
	ClosedPage
)

func (p RowPolicy) String() string {
	if p == ClosedPage {
		return "closed-page"
	}
	return "open-page"
}

// BankStripe selects where the bank bits sit in the module-local address.
type BankStripe int

const (
	// StripeRowBuffer interleaves banks at row-buffer granularity
	// (RoRaBaChCo, Table I): consecutive row-buffer-sized chunks rotate
	// across banks, so streams exploit bank parallelism.
	StripeRowBuffer BankStripe = iota
	// StripePage places the bank bits above the OS page: an entire 4 KB
	// page maps to one bank — the mapping ablation's strawman.
	StripePage
)

func (b BankStripe) String() string {
	if b == StripePage {
		return "page-stripe"
	}
	return "rowbuf-stripe"
}

// Scheduler selects which pending request a controller serves next.
type Scheduler int

const (
	// FRFCFS is first-ready, first-come-first-served: row-buffer hits are
	// prioritized over older row misses (Table I's scheduling policy).
	FRFCFS Scheduler = iota
	// FCFS serves requests strictly in arrival order. Provided as a
	// baseline for the scheduler ablation study.
	FCFS
)

func (s Scheduler) String() string {
	if s == FCFS {
		return "FCFS"
	}
	return "FR-FCFS"
}

// ChannelConfig configures one memory channel.
type ChannelConfig struct {
	Device        DeviceParams
	CapacityBytes uint64
	Scheduler     Scheduler

	// FrontendLatency is the on-chip interconnect delay from the LLC to
	// the controller; BackendLatency is the return path. Both default to
	// 4 ns, a typical on-chip crossbar traversal.
	FrontendLatency event.Time
	BackendLatency  event.Time

	// MaxQueue bounds the controller read/write queue (default 128). When
	// full, Enqueue reports backpressure and the caller must retry.
	MaxQueue int

	// StarvationLimit caps how long FR-FCFS may bypass the oldest request
	// in favor of row hits; past it the controller serves strictly in
	// order until the oldest request completes. Default 1 us.
	StarvationLimit event.Time

	// RowPolicy selects open- vs closed-page operation (default open).
	RowPolicy RowPolicy
	// BankStripe selects the bank-bit position (default row-buffer
	// granularity, per Table I's RoRaBaChCo).
	BankStripe BankStripe
}

func (c *ChannelConfig) setDefaults() {
	if c.FrontendLatency == 0 {
		c.FrontendLatency = 4 * ns
	}
	if c.BackendLatency == 0 {
		c.BackendLatency = 4 * ns
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 128
	}
	if c.StarvationLimit == 0 {
		c.StarvationLimit = 1 * us
	}
}

type bank struct {
	openRow        int64      // -1 when closed
	casReadyAt     event.Time // tRCD after the last activate
	preAllowedAt   event.Time // tRAS after the last activate
	actAllowedAt   event.Time // tRC after the last activate / tRP after precharge
	preInFlightRow int64      // row being closed, -1 if none
}

// ChannelStats aggregates the activity of one channel.
type ChannelStats struct {
	Reads       uint64
	Writes      uint64
	RowHits     uint64
	RowMisses   uint64 // activate to a closed bank
	RowConflict uint64 // precharge required first
	Activations uint64
	Precharges  uint64
	Refreshes   uint64

	BusBusyTime   event.Time // cumulative data-bus occupancy
	TotalQueueing event.Time // sum of per-request queue delays
	TotalService  event.Time // sum of per-request service times
	TotalLatency  event.Time // sum of per-request total latencies
	MaxQueueDepth int
}

// Requests returns the number of completed requests.
func (s ChannelStats) Requests() uint64 { return s.Reads + s.Writes }

// AvgLatency returns the mean controller-visible latency per request.
func (s ChannelStats) AvgLatency() event.Time {
	n := s.Requests()
	if n == 0 {
		return 0
	}
	return s.TotalLatency / event.Time(n)
}

// RowHitRate returns the fraction of requests served from an open row.
func (s ChannelStats) RowHitRate() float64 {
	n := s.Requests()
	if n == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(n)
}

// Controller models one memory channel: a command scheduler ticking at the
// device clock, per-bank row-buffer state, a shared data bus, and periodic
// refresh. It issues at most Timing.CommandsPerTick commands per clock.
type Controller struct {
	Name string

	cfg    ChannelConfig
	q      *event.Queue
	banks  []bank
	queue  []*Request // pending requests in arrival order
	stats  ChannelStats
	httime Timing // cached timing

	colBits  uint
	bankMask uint64
	lineTime event.Time // data-bus occupancy of one 64 B line

	pendingArrivals int // Enqueued but not yet visible after frontend delay
	busFreeAt       event.Time
	ticking         bool
	nextRefreshAt   event.Time

	// Observability; all nil (free) unless AttachObs was called. The
	// counters aggregate across every channel attached to one registry.
	obsReads     *obs.Counter
	obsWrites    *obs.Counter
	obsRowHits   *obs.Counter
	obsRowMiss   *obs.Counter
	obsConflicts *obs.Counter
	obsRefreshes *obs.Counter
	obsBackPress *obs.Counter
	obsDepth     *obs.Gauge
	obsLatency   *obs.Histogram
	obsTrace     *obs.Trace
}

// LineBytes is the transfer granularity: one LLC line.
const LineBytes = 64

// NewController builds a channel controller attached to the event queue.
func NewController(name string, q *event.Queue, cfg ChannelConfig) (*Controller, error) {
	cfg.setDefaults()
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	if cfg.CapacityBytes == 0 {
		return nil, fmt.Errorf("mem: %s: zero capacity", name)
	}
	c := &Controller{
		Name:   name,
		cfg:    cfg,
		q:      q,
		banks:  make([]bank, cfg.Device.Geometry.Banks),
		httime: cfg.Device.Timing,
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
		c.banks[i].preInFlightRow = -1
	}
	c.colBits = uint(log2(uint64(cfg.Device.Geometry.RowBufferBytes)))
	c.bankMask = uint64(cfg.Device.Geometry.Banks - 1)
	// Time to move one 64 B line across a ChannelBits-wide bus moving
	// DataRate beats per clock. At least one clock.
	g := cfg.Device.Geometry
	c.lineTime = event.Time(LineBytes*8) * c.httime.TCK /
		event.Time(g.ChannelBits*cfg.Device.Timing.DataRate)
	if c.lineTime < 1 {
		c.lineTime = 1
	}
	if c.httime.TREFI > 0 {
		c.nextRefreshAt = c.httime.TREFI
	} else {
		c.nextRefreshAt = 1 << 62 // non-volatile: never refresh
	}
	return c, nil
}

// LatencyBucketsPs are the controller-latency histogram bounds (50 ns to
// 6.4 us, doubling) — wide enough to separate row hits from queue-bound
// conflicts on every Table II device.
var LatencyBucketsPs = []uint64{
	50_000, 100_000, 200_000, 400_000, 800_000, 1_600_000, 3_200_000, 6_400_000,
}

// AttachObs registers the channel on the metrics registry ("mem.*"
// counters, the "mem.max_queue_depth" gauge, and the "mem.latency_ps"
// histogram; shared across channels) and the run-trace sink (row-conflict
// events). Nil arguments disable the corresponding instrumentation.
func (c *Controller) AttachObs(r *obs.Registry, tr *obs.Trace) {
	if r == nil {
		c.obsReads, c.obsWrites, c.obsRowHits, c.obsRowMiss = nil, nil, nil, nil
		c.obsConflicts, c.obsRefreshes, c.obsBackPress = nil, nil, nil
		c.obsDepth, c.obsLatency = nil, nil
	} else {
		c.obsReads = r.Counter("mem.reads")
		c.obsWrites = r.Counter("mem.writes")
		c.obsRowHits = r.Counter("mem.row_hits")
		c.obsRowMiss = r.Counter("mem.row_misses")
		c.obsConflicts = r.Counter("mem.row_conflicts")
		c.obsRefreshes = r.Counter("mem.refreshes")
		c.obsBackPress = r.Counter("mem.backpressure")
		c.obsDepth = r.Gauge("mem.max_queue_depth")
		c.obsLatency = r.Histogram("mem.latency_ps", LatencyBucketsPs)
	}
	c.obsTrace = tr
}

// Config returns the channel's configuration.
func (c *Controller) Config() ChannelConfig { return c.cfg }

// Stats returns a snapshot of the channel's statistics.
func (c *Controller) Stats() ChannelStats { return c.stats }

// ResetStats clears accumulated statistics (used to exclude warm-up).
func (c *Controller) ResetStats() { c.stats = ChannelStats{} }

// QueueLen returns the number of requests waiting for service.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Enqueue presents a request to the channel. It reports false when the
// controller queue is full (backpressure); the caller must retry later.
func (c *Controller) Enqueue(r *Request) bool {
	if len(c.queue)+c.pendingArrivals >= c.cfg.MaxQueue {
		if c.obsBackPress != nil {
			c.obsBackPress.Inc()
		}
		return false
	}
	c.pendingArrivals++
	r.Arrive = c.q.Now() + c.cfg.FrontendLatency
	r.FirstCmd = -1
	c.mapAddress(r)
	// The request becomes visible to the scheduler after the frontend
	// interconnect delay.
	c.q.Schedule(r.Arrive, func() {
		c.pendingArrivals--
		c.queue = append(c.queue, r)
		if len(c.queue) > c.stats.MaxQueueDepth {
			c.stats.MaxQueueDepth = len(c.queue)
		}
		if c.obsDepth != nil {
			c.obsDepth.RecordMax(int64(len(c.queue)))
		}
		c.armTick()
	})
	return true
}

// mapAddress decodes the module-local RoRaBaChCo address interleave: the
// column bits are the least significant, then the bank bits, then the row.
// (The Ch bits were consumed when the system routed to this channel.)
func (c *Controller) mapAddress(r *Request) {
	bankBits := uint(log2(uint64(c.cfg.Device.Geometry.Banks)))
	stripe := c.colBits
	if c.cfg.BankStripe == StripePage {
		const pageShift = 12
		if stripe < pageShift {
			stripe = pageShift
		}
	}
	r.bank = int((r.Addr >> stripe) & c.bankMask)
	// Row bits: everything above the column, with the bank bits removed.
	hi := r.Addr >> c.colBits
	low := hi & ((1 << (stripe - c.colBits)) - 1)
	high := hi >> (stripe - c.colBits + bankBits)
	r.row = (high<<(stripe-c.colBits) | low) % uint64(c.cfg.Device.Geometry.Rows)
}

func (c *Controller) armTick() {
	if c.ticking {
		return
	}
	c.ticking = true
	c.q.After(0, c.tick)
}

// tick runs one controller clock: refresh bookkeeping, then up to
// CommandsPerTick command issues chosen by the scheduling policy.
func (c *Controller) tick() {
	now := c.q.Now()

	// Refresh: when the interval elapses, all banks close and stay busy
	// for tRFC. Modeled as a bank-timing update, not a queued command.
	for now >= c.nextRefreshAt {
		start := c.nextRefreshAt
		for i := range c.banks {
			b := &c.banks[i]
			b.openRow = -1
			b.preInFlightRow = -1
			if t := start + c.httime.TRFC; t > b.actAllowedAt {
				b.actAllowedAt = t
			}
		}
		c.stats.Refreshes++
		if c.obsRefreshes != nil {
			c.obsRefreshes.Inc()
		}
		c.nextRefreshAt += c.httime.TREFI
	}

	for i := 0; i < c.httime.CommandsPerTick; i++ {
		if !c.issueOne(now) {
			break
		}
	}

	if len(c.queue) == 0 {
		c.ticking = false
		return
	}
	c.q.Schedule(now+c.httime.TCK, c.tick)
}

// issueOne issues the single best command available this cycle, preferring
// CAS (completes a request) over ACT over PRE so data flows as early as
// possible. Returns false if no command could issue.
func (c *Controller) issueOne(now event.Time) bool {
	if r := c.pickCAS(now); r != nil {
		c.issueCAS(now, r)
		return true
	}
	if r := c.pickACT(now); r != nil {
		c.issueACT(now, r)
		return true
	}
	if r := c.pickPRE(now); r != nil {
		c.issuePRE(now, r)
		return true
	}
	return false
}

// scanLimit returns how many queued requests (in age order) the scheduler
// may consider this cycle: all of them under FR-FCFS, only the oldest under
// FCFS, and only the oldest when it has been starved past the limit.
func (c *Controller) scanLimit(now event.Time) int {
	if len(c.queue) == 0 {
		return 0
	}
	if c.cfg.Scheduler == FCFS {
		return 1
	}
	if now-c.queue[0].Arrive > c.cfg.StarvationLimit {
		return 1
	}
	return len(c.queue)
}

// pickCAS finds the oldest request whose bank has its row open and ready
// and whose data burst can claim the bus. Row hits inherently win under
// FR-FCFS because conflicting requests are not CAS-ready.
func (c *Controller) pickCAS(now event.Time) *Request {
	limit := c.scanLimit(now)
	for i := 0; i < limit; i++ {
		r := c.queue[i]
		b := &c.banks[r.bank]
		if b.openRow == int64(r.row) && now >= b.casReadyAt && c.busFreeAt <= now+c.casDelay(r) {
			return r
		}
	}
	return nil
}

func (c *Controller) pickACT(now event.Time) *Request {
	limit := c.scanLimit(now)
	for i := 0; i < limit; i++ {
		r := c.queue[i]
		b := &c.banks[r.bank]
		if b.openRow == -1 && b.preInFlightRow == -1 && now >= b.actAllowedAt {
			return r
		}
	}
	return nil
}

func (c *Controller) pickPRE(now event.Time) *Request {
	limit := c.scanLimit(now)
	for i := 0; i < limit; i++ {
		r := c.queue[i]
		b := &c.banks[r.bank]
		if b.openRow != -1 && b.openRow != int64(r.row) && b.preInFlightRow == -1 &&
			now >= b.preAllowedAt && !c.anyWantsRow(r.bank, b.openRow, limit) {
			return r
		}
	}
	return nil
}

// anyWantsRow prevents closing a row that a schedulable queued request
// still targets — the essence of row-hit priority.
func (c *Controller) anyWantsRow(bankID int, row int64, limit int) bool {
	for i := 0; i < limit; i++ {
		r := c.queue[i]
		if r.bank == bankID && int64(r.row) == row {
			return true
		}
	}
	return false
}

// casDelay returns the CAS-to-data delay for a request: writes on
// write-asymmetric devices (PCM) take far longer than reads.
func (c *Controller) casDelay(r *Request) event.Time {
	if r.Write && c.httime.TCASWrite > 0 {
		return c.httime.TCASWrite
	}
	return c.httime.TCAS
}

func (c *Controller) issueCAS(now event.Time, r *Request) {
	if r.FirstCmd < 0 {
		r.FirstCmd = now
		c.stats.RowHits++
		if c.obsRowHits != nil {
			c.obsRowHits.Inc()
		}
	}
	dataStart := now + c.casDelay(r)
	r.DataFinish = dataStart + c.lineTime
	c.busFreeAt = r.DataFinish
	c.stats.BusBusyTime += c.lineTime
	if c.cfg.RowPolicy == ClosedPage {
		// Auto-precharge: the row closes once tRAS allows, and the next
		// activate waits out tRP from there.
		b := &c.banks[r.bank]
		preAt := b.preAllowedAt
		if r.DataFinish > preAt {
			preAt = r.DataFinish
		}
		b.openRow = -1
		c.stats.Precharges++
		if t := preAt + c.httime.TRP; t > b.actAllowedAt {
			b.actAllowedAt = t
		}
	}
	if r.Write && c.httime.TWR > 0 {
		// Write recovery keeps the bank busy past the burst.
		b := &c.banks[r.bank]
		if t := r.DataFinish + c.httime.TWR; t > b.preAllowedAt {
			b.preAllowedAt = t
		}
		if t := r.DataFinish + c.httime.TWR; t > b.actAllowedAt {
			b.actAllowedAt = t
		}
		if t := r.DataFinish + c.httime.TWR; t > b.casReadyAt {
			// Subsequent CAS to the open row also waits out recovery.
			b.casReadyAt = t
		}
	}

	// Keep the row open (open-page policy); tRAS still gates precharge.
	if r.Write {
		c.stats.Writes++
		if c.obsWrites != nil {
			c.obsWrites.Inc()
		}
	} else {
		c.stats.Reads++
		if c.obsReads != nil {
			c.obsReads.Inc()
		}
	}
	c.stats.TotalQueueing += r.QueueDelay()
	c.stats.TotalService += r.ServiceTime()
	c.stats.TotalLatency += r.TotalLatency()
	if c.obsLatency != nil {
		c.obsLatency.Observe(uint64(r.TotalLatency()))
	}

	c.removeRequest(r)
	if r.Done != nil {
		c.q.Schedule(r.DataFinish+c.cfg.BackendLatency, func() {
			r.Done(r, c.q.Now())
		})
	}
}

func (c *Controller) issueACT(now event.Time, r *Request) {
	b := &c.banks[r.bank]
	if r.FirstCmd < 0 {
		r.FirstCmd = now
		c.stats.RowMisses++
		if c.obsRowMiss != nil {
			c.obsRowMiss.Inc()
		}
	}
	b.openRow = int64(r.row)
	b.casReadyAt = now + c.httime.TRCD
	b.preAllowedAt = now + c.httime.TRAS
	b.actAllowedAt = now + c.httime.TRC
	c.stats.Activations++
}

func (c *Controller) issuePRE(now event.Time, r *Request) {
	b := &c.banks[r.bank]
	if r.FirstCmd < 0 {
		r.FirstCmd = now
		c.stats.RowConflict++
		if c.obsConflicts != nil {
			c.obsConflicts.Inc()
		}
		if c.obsTrace != nil {
			c.obsTrace.Emit(obs.Event{
				At: now, Kind: obs.RowConflict, Unit: c.Name,
				Core: r.Core, Addr: r.Addr,
			})
		}
	}
	b.preInFlightRow = b.openRow
	b.openRow = -1
	c.stats.Precharges++
	done := now + c.httime.TRP
	if done > b.actAllowedAt {
		b.actAllowedAt = done
	}
	c.q.Schedule(done, func() {
		b.preInFlightRow = -1
		c.armTick()
	})
}

func (c *Controller) removeRequest(r *Request) {
	for i, cur := range c.queue {
		if cur == r {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// IdealReadLatency returns the unloaded read latency of this channel: a
// closed-bank access with empty queues. Useful for sanity checks and for
// reasoning about classification thresholds.
func (c *Controller) IdealReadLatency() event.Time {
	t := c.httime
	return c.cfg.FrontendLatency + t.TRCD + t.TCAS + c.lineTime + c.cfg.BackendLatency
}

// LineTransferTime returns the data-bus occupancy of one 64 B line.
func (c *Controller) LineTransferTime() event.Time { return c.lineTime }

// PeakBandwidthGBps returns the data-bus peak bandwidth in GB/s
// (64 B line / line transfer time). 1 byte/ps == 1000 GB/s.
func (c *Controller) PeakBandwidthGBps() float64 {
	return float64(LineBytes) / float64(c.lineTime) * 1000.0
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
