package mem

import (
	"fmt"

	"moca/internal/event"
	"moca/internal/obs"
)

// RowPolicy selects what happens to a row after a CAS completes.
type RowPolicy int

const (
	// OpenPage keeps rows open until a conflict or refresh closes them —
	// best when consecutive requests share rows (the default, and what
	// the paper's FR-FCFS configuration implies).
	OpenPage RowPolicy = iota
	// ClosedPage auto-precharges after every access — lower conflict
	// latency for random traffic at the cost of all row hits.
	ClosedPage
)

func (p RowPolicy) String() string {
	if p == ClosedPage {
		return "closed-page"
	}
	return "open-page"
}

// BankStripe selects where the bank bits sit in the module-local address.
type BankStripe int

const (
	// StripeRowBuffer interleaves banks at row-buffer granularity
	// (RoRaBaChCo, Table I): consecutive row-buffer-sized chunks rotate
	// across banks, so streams exploit bank parallelism.
	StripeRowBuffer BankStripe = iota
	// StripePage places the bank bits above the OS page: an entire 4 KB
	// page maps to one bank — the mapping ablation's strawman.
	StripePage
)

func (b BankStripe) String() string {
	if b == StripePage {
		return "page-stripe"
	}
	return "rowbuf-stripe"
}

// Scheduler selects which pending request a controller serves next.
type Scheduler int

const (
	// FRFCFS is first-ready, first-come-first-served: row-buffer hits are
	// prioritized over older row misses (Table I's scheduling policy).
	FRFCFS Scheduler = iota
	// FCFS serves requests strictly in arrival order. Provided as a
	// baseline for the scheduler ablation study.
	FCFS
)

func (s Scheduler) String() string {
	if s == FCFS {
		return "FCFS"
	}
	return "FR-FCFS"
}

// ChannelConfig configures one memory channel.
type ChannelConfig struct {
	Device        DeviceParams
	CapacityBytes uint64
	Scheduler     Scheduler

	// FrontendLatency is the on-chip interconnect delay from the LLC to
	// the controller; BackendLatency is the return path. Both default to
	// 4 ns, a typical on-chip crossbar traversal.
	FrontendLatency event.Time
	BackendLatency  event.Time

	// MaxQueue bounds the controller read/write queue (default 128). When
	// full, Enqueue reports backpressure and the caller must retry.
	MaxQueue int

	// StarvationLimit caps how long FR-FCFS may bypass the oldest request
	// in favor of row hits; past it the controller serves strictly in
	// order until the oldest request completes. Default 1 us.
	StarvationLimit event.Time

	// RowPolicy selects open- vs closed-page operation (default open).
	RowPolicy RowPolicy
	// BankStripe selects the bank-bit position (default row-buffer
	// granularity, per Table I's RoRaBaChCo).
	BankStripe BankStripe
}

func (c *ChannelConfig) setDefaults() {
	if c.FrontendLatency == 0 {
		c.FrontendLatency = 4 * ns
	}
	if c.BackendLatency == 0 {
		c.BackendLatency = 4 * ns
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 128
	}
	if c.StarvationLimit == 0 {
		c.StarvationLimit = 1 * us
	}
}

type bank struct {
	openRow        int64      // -1 when closed
	casReadyAt     event.Time // tRCD after the last activate
	preAllowedAt   event.Time // tRAS after the last activate
	actAllowedAt   event.Time // tRC after the last activate / tRP after precharge
	preInFlightRow int64      // row being closed, -1 if none

	// Pending requests targeting this bank, in arrival order (intrusive
	// list through Request.nextB/prevB).
	head, tail *Request
	npend      int
	// rowMatch counts pending requests whose row equals openRow (always 0
	// while the bank is closed): the row-hit existence answer issueOne and
	// nextWake need per scan, maintained at enqueue/remove/ACT/PRE/refresh
	// instead of rediscovered by walking the chain.
	rowMatch int
}

// ChannelStats aggregates the activity of one channel.
type ChannelStats struct {
	Reads       uint64
	Writes      uint64
	RowHits     uint64
	RowMisses   uint64 // activate to a closed bank
	RowConflict uint64 // precharge required first
	Activations uint64
	Precharges  uint64
	Refreshes   uint64

	BusBusyTime   event.Time // cumulative data-bus occupancy
	TotalQueueing event.Time // sum of per-request queue delays
	TotalService  event.Time // sum of per-request service times
	TotalLatency  event.Time // sum of per-request total latencies
	MaxQueueDepth int
}

// Requests returns the number of completed requests.
func (s ChannelStats) Requests() uint64 { return s.Reads + s.Writes }

// AvgLatency returns the mean controller-visible latency per request.
func (s ChannelStats) AvgLatency() event.Time {
	n := s.Requests()
	if n == 0 {
		return 0
	}
	return s.TotalLatency / event.Time(n)
}

// RowHitRate returns the fraction of requests served from an open row.
func (s ChannelStats) RowHitRate() float64 {
	n := s.Requests()
	if n == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(n)
}

// Controller models one memory channel: a command scheduler clocked at the
// device clock, per-bank row-buffer state, a shared data bus, and periodic
// refresh. It issues at most Timing.CommandsPerTick commands per clock.
//
// The scheduler is event-driven: instead of polling every device clock
// while requests are pending, the controller computes the earliest clock
// edge at which any command could issue (request arrival, bank timing
// expiry, bus release, starvation onset, refresh deadline) and sleeps until
// then on a single reschedulable wake event. The skipped clock ticks are
// credited to the event queue's counters (Queue.Credit) so observability
// snapshots are bit-identical to the polling model's.
type Controller struct {
	Name string

	cfg    ChannelConfig
	q      *event.Queue
	banks  []bank
	stats  ChannelStats
	httime Timing // cached timing

	// Pending requests in arrival order (intrusive list through
	// Request.nextQ/prevQ); each request is also on its bank's list.
	qHead, qTail *Request
	qLen         int
	ageSeq       uint64
	freeReq      *Request // recycled pooled requests (EnqueueLine path)

	colBits  uint
	stripe   uint // bank-bit position in the module-local address
	bankBits uint
	bankMask uint64
	lineTime event.Time // data-bus occupancy of one 64 B line

	pendingArrivals int // Enqueued but not yet visible after frontend delay
	busFreeAt       event.Time
	nextRefreshAt   event.Time

	// Wake chain state. A chain is the span from arming (first request
	// visible with the scheduler idle) to the clock edge where the queue
	// empties; it corresponds 1:1 to a self-rescheduling tick chain in the
	// polling model, anchored on the same clock grid.
	chainActive bool
	anchor      event.Time // chain arming time: clock edges are anchor + k*tCK
	wake        event.Handle
	wakeAt      event.Time

	// Virtual-tick accounting: ticks the polling model would have executed.
	// vtClosed accumulates finished chains; SyncObs adds the live chain and
	// flushes deltas into the queue's scheduled/executed counters.
	vtClosed                    uint64
	creditedSched, creditedExec uint64

	// Observability; all nil (free) unless AttachObs was called. The
	// counters aggregate across every channel attached to one registry.
	obsReads     *obs.Counter
	obsWrites    *obs.Counter
	obsRowHits   *obs.Counter
	obsRowMiss   *obs.Counter
	obsConflicts *obs.Counter
	obsRefreshes *obs.Counter
	obsBackPress *obs.Counter
	obsDepth     *obs.Gauge
	obsLatency   *obs.Histogram
	obsTrace     *obs.Trace
}

// LineBytes is the transfer granularity: one LLC line.
const LineBytes = 64

// NewController builds a channel controller attached to the event queue.
func NewController(name string, q *event.Queue, cfg ChannelConfig) (*Controller, error) {
	cfg.setDefaults()
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	if cfg.CapacityBytes == 0 {
		return nil, fmt.Errorf("mem: %s: zero capacity", name)
	}
	c := &Controller{
		Name:   name,
		cfg:    cfg,
		q:      q,
		banks:  make([]bank, cfg.Device.Geometry.Banks),
		httime: cfg.Device.Timing,
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
		c.banks[i].preInFlightRow = -1
	}
	c.colBits = uint(log2(uint64(cfg.Device.Geometry.RowBufferBytes)))
	c.bankBits = uint(log2(uint64(cfg.Device.Geometry.Banks)))
	c.stripe = c.colBits
	if cfg.BankStripe == StripePage {
		const pageShift = 12
		if c.stripe < pageShift {
			c.stripe = pageShift
		}
	}
	c.bankMask = uint64(cfg.Device.Geometry.Banks - 1)
	// Time to move one 64 B line across a ChannelBits-wide bus moving
	// DataRate beats per clock. At least one clock.
	g := cfg.Device.Geometry
	c.lineTime = event.Time(LineBytes*8) * c.httime.TCK /
		event.Time(g.ChannelBits*cfg.Device.Timing.DataRate)
	if c.lineTime < 1 {
		c.lineTime = 1
	}
	if c.httime.TREFI > 0 {
		c.nextRefreshAt = c.httime.TREFI
	} else {
		c.nextRefreshAt = 1 << 62 // non-volatile: never refresh
	}
	return c, nil
}

// LatencyBucketsPs are the controller-latency histogram bounds (50 ns to
// 6.4 us, doubling) — wide enough to separate row hits from queue-bound
// conflicts on every Table II device.
var LatencyBucketsPs = []uint64{
	50_000, 100_000, 200_000, 400_000, 800_000, 1_600_000, 3_200_000, 6_400_000,
}

// AttachObs registers the channel on the metrics registry ("mem.*"
// counters, the "mem.max_queue_depth" gauge, and the "mem.latency_ps"
// histogram; shared across channels) and the run-trace sink (row-conflict
// events). Nil arguments disable the corresponding instrumentation.
func (c *Controller) AttachObs(r *obs.Registry, tr *obs.Trace) {
	if r == nil {
		c.obsReads, c.obsWrites, c.obsRowHits, c.obsRowMiss = nil, nil, nil, nil
		c.obsConflicts, c.obsRefreshes, c.obsBackPress = nil, nil, nil
		c.obsDepth, c.obsLatency = nil, nil
	} else {
		c.obsReads = r.Counter("mem.reads")
		c.obsWrites = r.Counter("mem.writes")
		c.obsRowHits = r.Counter("mem.row_hits")
		c.obsRowMiss = r.Counter("mem.row_misses")
		c.obsConflicts = r.Counter("mem.row_conflicts")
		c.obsRefreshes = r.Counter("mem.refreshes")
		c.obsBackPress = r.Counter("mem.backpressure")
		c.obsDepth = r.Gauge("mem.max_queue_depth")
		c.obsLatency = r.Histogram("mem.latency_ps", LatencyBucketsPs)
	}
	c.obsTrace = tr
}

// Config returns the channel's configuration.
func (c *Controller) Config() ChannelConfig { return c.cfg }

// Stats returns a snapshot of the channel's statistics.
func (c *Controller) Stats() ChannelStats { return c.stats }

// ResetStats clears accumulated statistics (used to exclude warm-up).
func (c *Controller) ResetStats() { c.stats = ChannelStats{} }

// QueueLen returns the number of requests waiting for service.
func (c *Controller) QueueLen() int { return c.qLen }

// Controller event opcodes (see OnEvent).
const (
	opArrival int32 = iota // p: *Request — frontend delay elapsed
	opPreDone              // i64: bank index — precharge finished
	opDone                 // p: *Request — deliver completion
	opWake                 // scheduler wake: next actionable clock edge
)

// Enqueue presents a request to the channel. It reports false when the
// controller queue is full (backpressure); the caller must retry later.
//moca:hotpath
func (c *Controller) Enqueue(r *Request) bool {
	if c.qLen+c.pendingArrivals >= c.cfg.MaxQueue {
		if c.obsBackPress != nil {
			c.obsBackPress.Inc()
		}
		return false
	}
	c.enqueue(r)
	return true
}

// EnqueueLine is the allocation-free submission path: the controller owns
// the Request (recycled through a free list) and completion is delivered to
// sink.MemDone(token, at) instead of a per-request closure. A nil sink
// (writebacks, copy traffic) completes silently.
//moca:hotpath
func (c *Controller) EnqueueLine(addr uint64, write bool, core int, obj uint64, sink DoneSink, token uint64) bool {
	if c.qLen+c.pendingArrivals >= c.cfg.MaxQueue {
		if c.obsBackPress != nil {
			c.obsBackPress.Inc()
		}
		return false
	}
	r := c.freeReq
	if r != nil {
		c.freeReq = r.nextQ
		*r = Request{pooled: true}
	} else {
		r = &Request{pooled: true}
	}
	r.Addr, r.Write, r.Core, r.Obj = addr, write, core, obj
	r.sink, r.token = sink, token
	c.enqueue(r)
	return true
}

//moca:hotpath
func (c *Controller) enqueue(r *Request) {
	c.pendingArrivals++
	r.Arrive = c.q.Now() + c.cfg.FrontendLatency
	r.FirstCmd = -1
	c.mapAddress(r)
	// The request becomes visible to the scheduler after the frontend
	// interconnect delay.
	c.q.Post(r.Arrive, c, opArrival, 0, r)
}

//moca:hotpath
func (c *Controller) release(r *Request) {
	if !r.pooled {
		return
	}
	r.nextQ = c.freeReq
	c.freeReq = r
}

// OnEvent implements event.Handler.
//moca:hotpath
func (c *Controller) OnEvent(now event.Time, op int32, i64 int64, p any) {
	switch op {
	case opArrival:
		c.onArrival(now, p.(*Request))
	case opPreDone:
		c.onPreDone(now, int(i64))
	case opDone:
		r := p.(*Request)
		if r.sink != nil {
			r.sink.MemDone(r.token, now)
		} else if r.Done != nil {
			r.Done(r, now)
		}
		c.release(r)
	case opWake:
		c.onWake(now)
	}
}

//moca:hotpath
func (c *Controller) onArrival(now event.Time, r *Request) {
	c.pendingArrivals--
	r.qSeq = c.ageSeq
	c.ageSeq++
	if c.qTail != nil {
		c.qTail.nextQ, r.prevQ = r, c.qTail
	} else {
		c.qHead = r
	}
	c.qTail = r
	c.qLen++
	b := &c.banks[r.bank]
	if b.tail != nil {
		b.tail.nextB, r.prevB = r, b.tail
	} else {
		b.head = r
	}
	b.tail = r
	b.npend++
	if b.openRow == int64(r.row) {
		b.rowMatch++
	}
	if c.qLen > c.stats.MaxQueueDepth {
		c.stats.MaxQueueDepth = c.qLen
	}
	if c.obsDepth != nil {
		c.obsDepth.RecordMax(int64(c.qLen))
	}
	if !c.chainActive {
		c.armChain(now)
	} else {
		c.pullWake(now)
	}
}

//moca:hotpath
func (c *Controller) onPreDone(now event.Time, bankIdx int) {
	c.banks[bankIdx].preInFlightRow = -1
	if !c.chainActive {
		if c.qLen == 0 {
			// The polling model would start a chain here that runs one
			// no-op tick and dies; account it without a wake.
			c.refreshCatchUp(now)
			c.vtClosed++
		} else {
			c.armChain(now)
		}
		return
	}
	c.pullWake(now)
}

// armChain starts a wake chain: the polling model's armTick scheduling an
// immediate tick. The wake fires at the current time, after every normal
// event already pending at it, exactly like a zero-delay tick would.
//moca:hotpath
func (c *Controller) armChain(now event.Time) {
	c.chainActive = true
	c.anchor = now
	c.wake = c.q.ScheduleWake(now, now, c, opWake)
	c.wakeAt = now
}

// pullWake re-evaluates the next actionable clock edge after a state change
// (arrival, precharge completion) and pulls the pending wake earlier if
// needed. State changes between wakes only ever add options, so the wake
// never moves later here.
//moca:hotpath
func (c *Controller) pullWake(now event.Time) {
	at, s := c.nextWake(now, now, false)
	if at < c.wakeAt {
		c.q.RescheduleWake(c.wake, at, s)
		c.wakeAt = at
	}
}

// onWake runs one scheduler activation at a clock edge: refresh
// bookkeeping, then up to CommandsPerTick command issues, then either chain
// death (queue empty) or a sleep until the next actionable edge.
//moca:hotpath
func (c *Controller) onWake(now event.Time) {
	c.refreshCatchUp(now)
	issued := 0
	for issued < c.httime.CommandsPerTick {
		if !c.issueOne(now) {
			break
		}
		issued++
	}
	if c.qLen == 0 {
		// Chain dies on the edge where the queue empties, same as the
		// polling model; credit every tick it would have executed.
		c.vtClosed += uint64((now-c.anchor)/c.httime.TCK) + 1
		c.chainActive = false
		return
	}
	at, s := c.nextWake(now, now+1, issued == c.httime.CommandsPerTick)
	c.wake = c.q.ScheduleWake(at, s, c, opWake)
	c.wakeAt = at
}

// refreshCatchUp applies refresh intervals that have elapsed: all banks
// close and stay busy for tRFC. Modeled as a bank-timing update, not a
// queued command.
//moca:hotpath
func (c *Controller) refreshCatchUp(now event.Time) {
	for now >= c.nextRefreshAt {
		start := c.nextRefreshAt
		for i := range c.banks {
			b := &c.banks[i]
			b.openRow = -1
			b.rowMatch = 0
			b.preInFlightRow = -1
			if t := start + c.httime.TRFC; t > b.actAllowedAt {
				b.actAllowedAt = t
			}
		}
		c.stats.Refreshes++
		if c.obsRefreshes != nil {
			c.obsRefreshes.Inc()
		}
		c.nextRefreshAt += c.httime.TREFI
	}
}

// nextWake computes the earliest clock edge >= lower at which the scheduler
// could issue a command, mirroring every condition the pick functions test:
// CAS readiness and bus release per row-matching request, ACT and PRE bank
// timing expiry, the FR-FCFS starvation boundary (the edge where the
// scheduler switches to in-order service), and the refresh deadline (bank
// state changes there, invalidating any plan made before it). Conservative
// early wakes are harmless no-ops — the polling model visited every edge —
// but a late wake would diverge, so candidates are exact lower bounds.
// cptExhausted marks an activation that used its full command budget: more
// work may be possible on the very next edge.
//moca:hotpath
func (c *Controller) nextWake(now, lower event.Time, cptExhausted bool) (at, s event.Time) {
	const far = int64(1) << 62
	best := far
	if cptExhausted {
		best = now + 1
	}
	head := c.qHead
	starved := c.cfg.Scheduler == FRFCFS && now-head.Arrive > c.cfg.StarvationLimit
	if c.cfg.Scheduler == FCFS || starved {
		// In-order service: only the oldest request can issue commands.
		b := &c.banks[head.bank]
		var cand event.Time
		switch {
		case b.openRow == int64(head.row):
			cand = b.casReadyAt
			if t := c.busFreeAt - c.casDelay(head); t > cand {
				cand = t
			}
		case b.openRow == -1:
			// Covers an in-flight precharge too: actAllowedAt was raised
			// to at least the precharge completion when PRE issued.
			cand = b.actAllowedAt
		default:
			// Conflict; with only the head considered, no request can
			// want the open row, so precharge is always permitted.
			cand = b.preAllowedAt
		}
		if cand < best {
			best = cand
		}
	} else {
		// With no write asymmetry casDelay is constant, so every row hit in
		// a bank yields the same candidate time and the first one decides.
		uniform := c.httime.TCASWrite <= 0
		for i := range c.banks {
			if best <= lower {
				// The result is max(best, lower): further banks can only
				// lower best below the clamp, never change the answer.
				break
			}
			b := &c.banks[i]
			if b.npend == 0 {
				continue
			}
			if b.openRow < 0 {
				if b.actAllowedAt < best {
					best = b.actAllowedAt
				}
				continue
			}
			if uniform {
				// casDelay is constant, so the counter alone decides: any
				// row hit yields the same candidate as the first one.
				if b.rowMatch > 0 {
					cand := b.casReadyAt
					if t := c.busFreeAt - c.httime.TCAS; t > cand {
						cand = t
					}
					if cand < best {
						best = cand
					}
				} else if b.preAllowedAt < best {
					best = b.preAllowedAt
				}
				continue
			}
			matched := b.rowMatch > 0
			for r := b.head; r != nil; r = r.nextB {
				if int64(r.row) != b.openRow {
					continue
				}
				cand := b.casReadyAt
				if t := c.busFreeAt - c.casDelay(r); t > cand {
					cand = t
				}
				if cand < best {
					best = cand
				}
			}
			if !matched && b.preAllowedAt < best {
				// No pending request wants the open row: precharge is
				// permitted once tRAS expires.
				best = b.preAllowedAt
			}
		}
		// The edge where the oldest request crosses the starvation limit
		// changes pick behavior even if no bank timing expires.
		if best > lower {
			if t := head.Arrive + c.cfg.StarvationLimit + 1; t < best {
				best = t
			}
		}
	}
	if c.nextRefreshAt < best {
		best = c.nextRefreshAt
	}
	if best < lower {
		best = lower
	}
	// Round up to the chain's clock grid.
	k := (best - c.anchor + c.httime.TCK - 1) / c.httime.TCK
	at = c.anchor + k*c.httime.TCK
	// Virtual schedule time: when the polling model would have scheduled
	// its tick for this edge (one clock earlier, floored at arming).
	s = at - c.httime.TCK
	if s < c.anchor {
		s = c.anchor
	}
	return at, s
}

// mapAddress decodes the module-local RoRaBaChCo address interleave: the
// column bits are the least significant, then the bank bits, then the row.
// (The Ch bits were consumed when the system routed to this channel.)
//moca:hotpath
func (c *Controller) mapAddress(r *Request) {
	bankBits := c.bankBits
	stripe := c.stripe
	r.bank = int((r.Addr >> stripe) & c.bankMask)
	// Row bits: everything above the column, with the bank bits removed.
	hi := r.Addr >> c.colBits
	low := hi & ((1 << (stripe - c.colBits)) - 1)
	high := hi >> (stripe - c.colBits + bankBits)
	r.row = (high<<(stripe-c.colBits) | low) % uint64(c.cfg.Device.Geometry.Rows)
}

// issueOne issues the single best command available this cycle, preferring
// CAS (completes a request) over ACT over PRE so data flows as early as
// possible. Returns false if no command could issue.
//moca:hotpath
// issueOne picks and issues the highest-priority ready command: the oldest
// CAS (row hits inherently win under FR-FCFS because conflicting requests
// are not CAS-ready), else the oldest ACT into a closed bank, else the
// oldest PRE of a row nothing pending still wants. All three candidates
// come out of one pass over the banks — per bank the CAS/PRE conditions
// (row open) and the ACT condition (row closed) are mutually exclusive,
// and one chain walk answers both the CAS pick (first row hit that can
// claim the bus) and the PRE row-still-wanted test. The fused scan issues
// exactly what the three separate oldest-first scans would.
//
//moca:hotpath
func (c *Controller) issueOne(now event.Time) bool {
	if c.qHead == nil {
		return false
	}
	// In-order mode considers only the oldest request: always under FCFS,
	// and under FR-FCFS once the oldest has been starved past the limit.
	if c.cfg.Scheduler == FCFS || now-c.qHead.Arrive > c.cfg.StarvationLimit {
		r := c.qHead
		b := &c.banks[r.bank]
		if b.openRow == int64(r.row) && now >= b.casReadyAt && c.busFreeAt <= now+c.casDelay(r) {
			c.issueCAS(now, r)
			return true
		}
		if b.openRow == -1 && b.preInFlightRow == -1 && now >= b.actAllowedAt {
			c.issueACT(now, r)
			return true
		}
		// With only the head considered, no request can want the open row.
		if b.openRow != -1 && b.openRow != int64(r.row) && b.preInFlightRow == -1 &&
			now >= b.preAllowedAt {
			c.issuePRE(now, r)
			return true
		}
		return false
	}
	var cas, act, pre *Request
	for i := range c.banks {
		b := &c.banks[i]
		if b.npend == 0 {
			continue
		}
		if b.openRow == -1 {
			if b.preInFlightRow == -1 && now >= b.actAllowedAt {
				if r := b.head; act == nil || r.qSeq < act.qSeq {
					act = r
				}
			}
			continue
		}
		casReady := now >= b.casReadyAt
		preReady := b.preInFlightRow == -1 && now >= b.preAllowedAt
		if !casReady && !preReady {
			continue
		}
		wanted := b.rowMatch > 0
		if wanted && casReady {
			for r := b.head; r != nil; r = r.nextB {
				if int64(r.row) != b.openRow {
					continue
				}
				if c.busFreeAt <= now+c.casDelay(r) {
					if cas == nil || r.qSeq < cas.qSeq {
						cas = r
					}
					break // older requests in this bank cannot beat r
				}
				// Row hit that cannot claim the bus: keep walking, a
				// later hit with a different burst length may fit.
			}
		}
		if preReady && !wanted {
			if r := b.head; pre == nil || r.qSeq < pre.qSeq {
				pre = r
			}
		}
	}
	if cas != nil {
		c.issueCAS(now, cas)
		return true
	}
	if act != nil {
		c.issueACT(now, act)
		return true
	}
	if pre != nil {
		c.issuePRE(now, pre)
		return true
	}
	return false
}

// casDelay returns the CAS-to-data delay for a request: writes on
// write-asymmetric devices (PCM) take far longer than reads.
//moca:hotpath
func (c *Controller) casDelay(r *Request) event.Time {
	if r.Write && c.httime.TCASWrite > 0 {
		return c.httime.TCASWrite
	}
	return c.httime.TCAS
}

//moca:hotpath
func (c *Controller) issueCAS(now event.Time, r *Request) {
	if r.FirstCmd < 0 {
		r.FirstCmd = now
		c.stats.RowHits++
		if c.obsRowHits != nil {
			c.obsRowHits.Inc()
		}
	}
	dataStart := now + c.casDelay(r)
	r.DataFinish = dataStart + c.lineTime
	c.busFreeAt = r.DataFinish
	c.stats.BusBusyTime += c.lineTime
	if c.cfg.RowPolicy == ClosedPage {
		// Auto-precharge: the row closes once tRAS allows, and the next
		// activate waits out tRP from there.
		b := &c.banks[r.bank]
		preAt := b.preAllowedAt
		if r.DataFinish > preAt {
			preAt = r.DataFinish
		}
		b.openRow = -1
		b.rowMatch = 0
		c.stats.Precharges++
		if t := preAt + c.httime.TRP; t > b.actAllowedAt {
			b.actAllowedAt = t
		}
	}
	if r.Write && c.httime.TWR > 0 {
		// Write recovery keeps the bank busy past the burst.
		b := &c.banks[r.bank]
		if t := r.DataFinish + c.httime.TWR; t > b.preAllowedAt {
			b.preAllowedAt = t
		}
		if t := r.DataFinish + c.httime.TWR; t > b.actAllowedAt {
			b.actAllowedAt = t
		}
		if t := r.DataFinish + c.httime.TWR; t > b.casReadyAt {
			// Subsequent CAS to the open row also waits out recovery.
			b.casReadyAt = t
		}
	}

	// Keep the row open (open-page policy); tRAS still gates precharge.
	if r.Write {
		c.stats.Writes++
		if c.obsWrites != nil {
			c.obsWrites.Inc()
		}
	} else {
		c.stats.Reads++
		if c.obsReads != nil {
			c.obsReads.Inc()
		}
	}
	c.stats.TotalQueueing += r.QueueDelay()
	c.stats.TotalService += r.ServiceTime()
	c.stats.TotalLatency += r.TotalLatency()
	if c.obsLatency != nil {
		c.obsLatency.Observe(uint64(r.TotalLatency()))
	}

	c.removeRequest(r)
	if r.sink != nil || r.Done != nil {
		c.q.Post(r.DataFinish+c.cfg.BackendLatency, c, opDone, 0, r)
	} else {
		c.release(r)
	}
}

//moca:hotpath
func (c *Controller) issueACT(now event.Time, r *Request) {
	b := &c.banks[r.bank]
	if r.FirstCmd < 0 {
		r.FirstCmd = now
		c.stats.RowMisses++
		if c.obsRowMiss != nil {
			c.obsRowMiss.Inc()
		}
	}
	b.openRow = int64(r.row)
	b.rowMatch = 0
	for x := b.head; x != nil; x = x.nextB {
		if int64(x.row) == b.openRow {
			b.rowMatch++
		}
	}
	b.casReadyAt = now + c.httime.TRCD
	b.preAllowedAt = now + c.httime.TRAS
	b.actAllowedAt = now + c.httime.TRC
	c.stats.Activations++
}

//moca:hotpath
func (c *Controller) issuePRE(now event.Time, r *Request) {
	b := &c.banks[r.bank]
	if r.FirstCmd < 0 {
		r.FirstCmd = now
		c.stats.RowConflict++
		if c.obsConflicts != nil {
			c.obsConflicts.Inc()
		}
		if c.obsTrace != nil {
			c.obsTrace.Emit(obs.Event{
				At: now, Kind: obs.RowConflict, Unit: c.Name,
				Core: r.Core, Addr: r.Addr,
			})
		}
	}
	b.preInFlightRow = b.openRow
	b.openRow = -1
	b.rowMatch = 0
	c.stats.Precharges++
	done := now + c.httime.TRP
	if done > b.actAllowedAt {
		b.actAllowedAt = done
	}
	c.q.Post(done, c, opPreDone, int64(r.bank), nil)
}

// removeRequest unlinks a served request from the global FIFO and its
// bank's list in O(1).
//moca:hotpath
func (c *Controller) removeRequest(r *Request) {
	if r.prevQ != nil {
		r.prevQ.nextQ = r.nextQ
	} else {
		c.qHead = r.nextQ
	}
	if r.nextQ != nil {
		r.nextQ.prevQ = r.prevQ
	} else {
		c.qTail = r.prevQ
	}
	b := &c.banks[r.bank]
	if r.prevB != nil {
		r.prevB.nextB = r.nextB
	} else {
		b.head = r.nextB
	}
	if r.nextB != nil {
		r.nextB.prevB = r.prevB
	} else {
		b.tail = r.prevB
	}
	r.nextQ, r.prevQ, r.nextB, r.prevB = nil, nil, nil, nil
	c.qLen--
	b.npend--
	if b.openRow == int64(r.row) {
		b.rowMatch--
	}
}

// SyncObs flushes the virtual-tick account into the event queue's
// scheduled/executed counters, making them read exactly as if the
// controller had polled every device clock. The simulator calls it
// immediately before resetting or snapshotting the metrics registry — the
// only two points where counter values are observed.
func (c *Controller) SyncObs() {
	exec := c.vtClosed
	sched := c.vtClosed
	if c.chainActive {
		// Ticks the polling chain would have executed by now, plus the
		// one it would currently have pending (scheduled, not executed).
		n := uint64((c.q.Now()-c.anchor)/c.httime.TCK) + 1
		exec += n
		sched += n + 1
	}
	c.q.Credit(sched-c.creditedSched, exec-c.creditedExec)
	c.creditedSched, c.creditedExec = sched, exec
}

// IdealReadLatency returns the unloaded read latency of this channel: a
// closed-bank access with empty queues. Useful for sanity checks and for
// reasoning about classification thresholds.
func (c *Controller) IdealReadLatency() event.Time {
	t := c.httime
	return c.cfg.FrontendLatency + t.TRCD + t.TCAS + c.lineTime + c.cfg.BackendLatency
}

// LineTransferTime returns the data-bus occupancy of one 64 B line.
func (c *Controller) LineTransferTime() event.Time { return c.lineTime }

// PeakBandwidthGBps returns the data-bus peak bandwidth in GB/s
// (64 B line / line transfer time). 1 byte/ps == 1000 GB/s.
func (c *Controller) PeakBandwidthGBps() float64 {
	return float64(LineBytes) / float64(c.lineTime) * 1000.0
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
