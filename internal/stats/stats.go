// Package stats provides the small numeric and formatting toolkit the
// experiment harness uses to render paper-style tables: aligned text
// tables, normalization against a baseline column, and summary means.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends a row; missing cells render empty, extras are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Cols))
	for i := 0; i < len(t.Cols) && i < len(cells); i++ {
		row[i] = cells[i]
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(note string) { t.Notes = append(t.Notes, note) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Cols)
	total := len(t.Cols)*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// F formats a float at a sensible precision for table cells. NaN — the
// grid's missing-value marker (e.g. a normalized cell with a zero
// baseline) — renders as "-".
func F(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Mean returns the arithmetic mean (0 for empty input). NaN values are
// missing cells and are skipped; if every value is missing the mean is NaN.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	n := 0
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		s += v
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// GeoMean returns the geometric mean of positive values (0 if any value is
// non-positive or the input is empty) — the standard summary for
// normalized performance ratios. NaN values are missing cells and are
// skipped; if every value is missing the mean is NaN.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	n := 0
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(s / float64(n))
}

// Grid is a labeled rows x cols matrix of values — the shape of every
// figure in the paper's evaluation (bar groups per workload, one bar per
// memory system). It carries raw values; Normalize derives the
// relative-to-baseline view the paper plots.
type Grid struct {
	Name    string
	RowName string // e.g. "app" or "mix"
	Rows    []string
	Cols    []string
	Values  [][]float64 // [row][col]
}

// NewGrid builds an empty grid with the given row and column labels.
func NewGrid(name, rowName string, rows, cols []string) *Grid {
	vals := make([][]float64, len(rows))
	for i := range vals {
		vals[i] = make([]float64, len(cols))
	}
	return &Grid{Name: name, RowName: rowName, Rows: rows, Cols: cols, Values: vals}
}

// Set stores a value by labels; unknown labels panic (a harness bug).
func (g *Grid) Set(row, col string, v float64) {
	g.Values[g.rowIndex(row)][g.colIndex(col)] = v
}

// Get fetches a value by labels.
func (g *Grid) Get(row, col string) float64 {
	return g.Values[g.rowIndex(row)][g.colIndex(col)]
}

func (g *Grid) rowIndex(row string) int {
	for i, r := range g.Rows {
		if r == row {
			return i
		}
	}
	panic(fmt.Sprintf("stats: unknown row %q in grid %q", row, g.Name))
}

func (g *Grid) colIndex(col string) int {
	for i, c := range g.Cols {
		if c == col {
			return i
		}
	}
	panic(fmt.Sprintf("stats: unknown column %q in grid %q", col, g.Name))
}

// Normalize returns a copy where every row is divided by that row's value
// in the baseline column (the paper's "normalized to Homogen-DDR3" /
// "normalized to Heter-App" presentation). A zero baseline makes the whole
// row NaN (missing): mixing raw values into a normalized grid would
// silently corrupt the trailing mean row, so the summary means skip these
// cells and F renders them as "-".
func (g *Grid) Normalize(baseline string) *Grid {
	bi := g.colIndex(baseline)
	out := NewGrid(g.Name+" (normalized to "+baseline+")", g.RowName, g.Rows, g.Cols)
	for r := range g.Values {
		base := g.Values[r][bi]
		for c := range g.Values[r] {
			if base != 0 {
				out.Values[r][c] = g.Values[r][c] / base
			} else {
				out.Values[r][c] = math.NaN()
			}
		}
	}
	return out
}

// ColMean returns the arithmetic mean of one column.
func (g *Grid) ColMean(col string) float64 {
	ci := g.colIndex(col)
	var vals []float64
	for r := range g.Values {
		vals = append(vals, g.Values[r][ci])
	}
	return Mean(vals)
}

// ColGeoMean returns the geometric mean of one column.
func (g *Grid) ColGeoMean(col string) float64 {
	ci := g.colIndex(col)
	var vals []float64
	for r := range g.Values {
		vals = append(vals, g.Values[r][ci])
	}
	return GeoMean(vals)
}

// Table renders the grid with a trailing mean row.
func (g *Grid) Table() *Table {
	t := NewTable(g.Name, append([]string{g.RowName}, g.Cols...)...)
	for r, label := range g.Rows {
		cells := []string{label}
		for c := range g.Cols {
			cells = append(cells, F(g.Values[r][c]))
		}
		t.AddRow(cells...)
	}
	mean := []string{"mean"}
	for _, c := range g.Cols {
		mean = append(mean, F(g.ColMean(c)))
	}
	t.AddRow(mean...)
	return t
}

// CSV renders the grid as comma-separated values (full float precision),
// for plotting tools.
func (g *Grid) CSV() string {
	var b strings.Builder
	b.WriteString(g.RowName)
	for _, c := range g.Cols {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for r, label := range g.Rows {
		b.WriteString(csvEscape(label))
		for c := range g.Cols {
			fmt.Fprintf(&b, ",%g", g.Values[r][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(c, "|", `\|`))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
