package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "app", "value")
	tb.AddRow("mcf", "1.5")
	tb.AddRow("a-very-long-name", "2")
	tb.AddRow("short") // missing cell
	tb.AddNote("hello")
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "a-very-long-name") {
		t.Errorf("render:\n%s", s)
	}
	if !strings.Contains(s, "note: hello") {
		t.Error("note missing")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Title, header, rule, 3 rows, note.
	if len(lines) != 7 {
		t.Errorf("got %d lines:\n%s", len(lines), s)
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1234.5: "1234", // %.0f rounds half to even
		12.34:  "12.3",
		1.2345: "1.234",
		0.5:    "0.500",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty means not 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with zero should be 0")
	}
}

func TestGridSetGetNormalize(t *testing.T) {
	g := NewGrid("fig", "app", []string{"a", "b"}, []string{"base", "x"})
	g.Set("a", "base", 2)
	g.Set("a", "x", 1)
	g.Set("b", "base", 4)
	g.Set("b", "x", 8)
	if g.Get("b", "x") != 8 {
		t.Error("get")
	}
	n := g.Normalize("base")
	if n.Get("a", "base") != 1 || n.Get("a", "x") != 0.5 || n.Get("b", "x") != 2 {
		t.Errorf("normalized: %+v", n.Values)
	}
	// Baseline column becomes all ones.
	if n.ColMean("base") != 1 {
		t.Error("baseline column not 1")
	}
	if got := n.ColMean("x"); got != 1.25 {
		t.Errorf("ColMean = %v", got)
	}
	if got := n.ColGeoMean("x"); got != 1 {
		t.Errorf("ColGeoMean = %v", got)
	}
}

func TestGridZeroBaseline(t *testing.T) {
	g := NewGrid("fig", "app", []string{"a", "b"}, []string{"base", "x"})
	g.Set("a", "x", 5) // row a: zero baseline
	g.Set("b", "base", 2)
	g.Set("b", "x", 4)
	n := g.Normalize("base")
	// The zero-baseline row is entirely missing — NaN, not raw values —
	// so the mean row never mixes raw and normalized numbers.
	if !math.IsNaN(n.Get("a", "x")) || !math.IsNaN(n.Get("a", "base")) {
		t.Errorf("zero-baseline row not NaN: %+v", n.Values)
	}
	// Summary means skip the missing row instead of absorbing it.
	if got := n.ColMean("x"); got != 2 {
		t.Errorf("ColMean skipping NaN = %v, want 2", got)
	}
	if got := n.ColGeoMean("x"); got != 2 {
		t.Errorf("ColGeoMean skipping NaN = %v, want 2", got)
	}
	// Missing cells render as "-" in tables.
	if s := n.Table().String(); !strings.Contains(s, "-") {
		t.Errorf("table does not render missing cells:\n%s", s)
	}
	if got := F(math.NaN()); got != "-" {
		t.Errorf("F(NaN) = %q, want %q", got, "-")
	}
}

func TestMeansSkipNaN(t *testing.T) {
	if got := Mean([]float64{1, math.NaN(), 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := GeoMean([]float64{1, math.NaN(), 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if !math.IsNaN(Mean([]float64{math.NaN()})) {
		t.Error("all-NaN Mean should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{math.NaN()})) {
		t.Error("all-NaN GeoMean should be NaN")
	}
}

func TestGridUnknownLabelPanics(t *testing.T) {
	g := NewGrid("fig", "app", []string{"a"}, []string{"c"})
	defer func() {
		if recover() == nil {
			t.Error("unknown label did not panic")
		}
	}()
	g.Set("zz", "c", 1)
}

func TestGridTable(t *testing.T) {
	g := NewGrid("fig", "app", []string{"a"}, []string{"c1", "c2"})
	g.Set("a", "c1", 1)
	g.Set("a", "c2", 2)
	s := g.Table().String()
	if !strings.Contains(s, "mean") || !strings.Contains(s, "fig") {
		t.Errorf("table:\n%s", s)
	}
}

// Property: normalizing twice by the same baseline is idempotent.
func TestPropertyNormalizeIdempotent(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		g := NewGrid("g", "r", []string{"r1", "r2"}, []string{"base", "x"})
		g.Set("r1", "base", float64(a)+1)
		g.Set("r1", "x", float64(b)+1)
		g.Set("r2", "base", float64(c)+1)
		g.Set("r2", "x", float64(d)+1)
		n1 := g.Normalize("base")
		n2 := n1.Normalize("base")
		for r := range n1.Values {
			for col := range n1.Values[r] {
				if math.Abs(n1.Values[r][col]-n2.Values[r][col]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GeoMean lies between min and max for positive inputs.
func TestPropertyGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var vals []float64
		min, max := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r) + 1
			vals = append(vals, v)
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		gm := GeoMean(vals)
		return gm >= min-1e-9 && gm <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridCSV(t *testing.T) {
	g := NewGrid("fig", "app", []string{"a,b", "c"}, []string{"x"})
	g.Set("a,b", "x", 1.25)
	g.Set("c", "x", 2)
	csv := g.CSV()
	want := "app,x\n\"a,b\",1.25\nc,2\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "a", "b")
	tb.AddRow("x|y", "1")
	tb.AddNote("note here")
	md := tb.Markdown()
	for _, want := range []string{"**Demo**", "| a | b |", "| --- | --- |", `x\|y`, "*note here*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
