// Package classify implements MOCA's memory-object classification stage
// (paper Section III-B, Fig. 5): objects are typed by two profiled metrics,
// LLC misses per kilo-instruction (memory intensity) and ROB-head stall
// cycles per load miss (inverse memory-level parallelism).
//
//   - LLC MPKI <= Thr_Lat                  -> non-memory-intensive (Pow Mem)
//   - MPKI > Thr_Lat, stalls >  Thr_BW     -> latency-sensitive    (Lat Mem)
//   - MPKI > Thr_Lat, stalls <= Thr_BW     -> bandwidth-sensitive  (BW Mem)
//
// The paper sets Thr_Lat = 1 and Thr_BW = 20 for its target system
// (Section IV-C) and notes both must be recalibrated per system; Calibrate
// reproduces that empirical sweep given an evaluation function.
package classify

import "fmt"

// Class is a memory-access behavior type for an object or an application.
type Class int

const (
	// NonIntensive objects rarely miss the LLC; placing them in the
	// low-power module costs no performance (paper: "N").
	NonIntensive Class = iota
	// LatencySensitive objects miss often with low MLP; they want the
	// reduced-latency module (paper: "L").
	LatencySensitive
	// BandwidthSensitive objects miss often with high MLP; they want the
	// high-bandwidth module (paper: "B").
	BandwidthSensitive
)

func (c Class) String() string {
	switch c {
	case NonIntensive:
		return "N"
	case LatencySensitive:
		return "L"
	case BandwidthSensitive:
		return "B"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists all classes in paper order (L, B, N).
func Classes() []Class {
	return []Class{LatencySensitive, BandwidthSensitive, NonIntensive}
}

// Thresholds are the two classification cut points.
type Thresholds struct {
	// LatMPKI is Thr_Lat: the LLC MPKI above which an object is
	// memory-intensive.
	LatMPKI float64
	// BWStallCycles is Thr_BW: the ROB-head stall cycles per load miss
	// above which a memory-intensive object is latency- rather than
	// bandwidth-sensitive.
	BWStallCycles float64
}

// DefaultThresholds returns the paper's empirically chosen values for its
// target heterogeneous system: Thr_Lat = 1, Thr_BW = 20 (Section IV-C).
func DefaultThresholds() Thresholds {
	return Thresholds{LatMPKI: 1, BWStallCycles: 20}
}

// DefaultAppThresholds returns the application-level cut points used to
// reproduce Table III for the Heter-App baseline. Application-level
// classification (Phadke & Narayanasamy) tolerates more aggregate MPKI
// before calling a whole program memory-intensive than MOCA's per-object
// Thr_Lat does — gcc is "N" in Table III even though one of its objects
// exceeds the object threshold (Section VI-A).
func DefaultAppThresholds() Thresholds {
	return Thresholds{LatMPKI: 5, BWStallCycles: 20}
}

// Validate reports a threshold configuration error, if any.
func (t Thresholds) Validate() error {
	if t.LatMPKI < 0 {
		return fmt.Errorf("classify: negative Thr_Lat %v", t.LatMPKI)
	}
	if t.BWStallCycles < 0 {
		return fmt.Errorf("classify: negative Thr_BW %v", t.BWStallCycles)
	}
	return nil
}

// Classify types a memory object (or a whole application) from its profiled
// LLC MPKI and average ROB-head stall cycles per load miss.
func (t Thresholds) Classify(mpki, stallPerMiss float64) Class {
	if mpki <= t.LatMPKI {
		return NonIntensive
	}
	if stallPerMiss > t.BWStallCycles {
		return LatencySensitive
	}
	return BandwidthSensitive
}

// Metrics is a (MPKI, stall) point, the coordinate system of Figs. 1 and 2.
type Metrics struct {
	MPKI         float64
	StallPerMiss float64
}

// CalibrationResult records one evaluated threshold candidate.
type CalibrationResult struct {
	Thresholds Thresholds
	Score      float64
}

// Calibrate reproduces the paper's empirical threshold setup (Section
// IV-C): it evaluates every combination of the candidate Thr_Lat and Thr_BW
// values with the provided scoring function (typically memory EDP of a
// training workload; lower is better) and returns the best thresholds along
// with the full sweep for reporting.
func Calibrate(latCandidates, bwCandidates []float64, score func(Thresholds) float64) (Thresholds, []CalibrationResult) {
	best := Thresholds{}
	bestScore := 0.0
	first := true
	var sweep []CalibrationResult
	for _, lat := range latCandidates {
		for _, bw := range bwCandidates {
			th := Thresholds{LatMPKI: lat, BWStallCycles: bw}
			s := score(th)
			sweep = append(sweep, CalibrationResult{Thresholds: th, Score: s})
			if first || s < bestScore {
				best, bestScore, first = th, s, false
			}
		}
	}
	return best, sweep
}
