package classify

import (
	"testing"
	"testing/quick"
)

func TestDefaultThresholds(t *testing.T) {
	th := DefaultThresholds()
	if th.LatMPKI != 1 || th.BWStallCycles != 20 {
		t.Errorf("defaults = %+v, want Thr_Lat=1 Thr_BW=20 (Section IV-C)", th)
	}
	if err := th.Validate(); err != nil {
		t.Error(err)
	}
}

func TestClassifyRegions(t *testing.T) {
	// The Fig. 5 quadrants.
	th := DefaultThresholds()
	cases := []struct {
		mpki, stall float64
		want        Class
	}{
		{0.0, 0, NonIntensive},
		{0.5, 100, NonIntensive}, // low MPKI: power module regardless of MLP
		{1.0, 500, NonIntensive}, // boundary: <= Thr_Lat is non-intensive
		{1.01, 21, LatencySensitive},
		{50, 100, LatencySensitive},
		{1.01, 20, BandwidthSensitive}, // boundary: <= Thr_BW is bandwidth
		{50, 5, BandwidthSensitive},
		{100, 0, BandwidthSensitive},
	}
	for _, c := range cases {
		if got := th.Classify(c.mpki, c.stall); got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.mpki, c.stall, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Thresholds{LatMPKI: -1}).Validate(); err == nil {
		t.Error("negative Thr_Lat accepted")
	}
	if err := (Thresholds{BWStallCycles: -1}).Validate(); err == nil {
		t.Error("negative Thr_BW accepted")
	}
}

func TestClassStringsAndOrder(t *testing.T) {
	if LatencySensitive.String() != "L" || BandwidthSensitive.String() != "B" || NonIntensive.String() != "N" {
		t.Error("class strings do not match the paper's L/B/N")
	}
	cs := Classes()
	if len(cs) != 3 || cs[0] != LatencySensitive || cs[1] != BandwidthSensitive || cs[2] != NonIntensive {
		t.Errorf("Classes() = %v", cs)
	}
	if Class(9).String() != "Class(9)" {
		t.Error("unknown class string")
	}
}

func TestCalibratePicksMinimum(t *testing.T) {
	// Score surface with a unique minimum at (2, 30).
	score := func(th Thresholds) float64 {
		return (th.LatMPKI-2)*(th.LatMPKI-2) + (th.BWStallCycles-30)*(th.BWStallCycles-30)
	}
	best, sweep := Calibrate([]float64{0.5, 1, 2, 4}, []float64{10, 20, 30, 40}, score)
	if best.LatMPKI != 2 || best.BWStallCycles != 30 {
		t.Errorf("Calibrate best = %+v, want (2,30)", best)
	}
	if len(sweep) != 16 {
		t.Errorf("sweep has %d entries, want 16", len(sweep))
	}
}

func TestCalibrateEmptyCandidates(t *testing.T) {
	best, sweep := Calibrate(nil, nil, func(Thresholds) float64 { return 0 })
	if len(sweep) != 0 {
		t.Error("sweep should be empty")
	}
	if best != (Thresholds{}) {
		t.Errorf("best = %+v, want zero value", best)
	}
}

// Property: classification is monotone — raising MPKI never moves an object
// toward NonIntensive; raising stalls never moves it from Latency to
// Bandwidth.
func TestPropertyMonotonicity(t *testing.T) {
	th := DefaultThresholds()
	f := func(mpkiRaw, stallRaw uint16, dm, ds uint8) bool {
		mpki := float64(mpkiRaw) / 100
		stall := float64(stallRaw) / 100
		c1 := th.Classify(mpki, stall)
		c2 := th.Classify(mpki+float64(dm), stall)
		if c1 != NonIntensive && c2 == NonIntensive {
			return false
		}
		c3 := th.Classify(mpki, stall+float64(ds))
		if c1 == LatencySensitive && c3 == BandwidthSensitive {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every (mpki, stall) point gets exactly one of the three classes.
func TestPropertyTotalAndExclusive(t *testing.T) {
	th := DefaultThresholds()
	f := func(mpkiRaw, stallRaw uint16) bool {
		c := th.Classify(float64(mpkiRaw)/10, float64(stallRaw)/10)
		return c == NonIntensive || c == LatencySensitive || c == BandwidthSensitive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
