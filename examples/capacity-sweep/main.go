// Capacity-sweep: Section VI-C's heterogeneous configuration study for one
// workload set — the data behind Figs. 14 and 15.
//
// The three configurations trade RLDRAM capacity against HBM and LPDDR2:
//
//	config1: 256MB RLDRAM +  768MB HBM + 1GB LPDDR2   (scarce RLDRAM)
//	config2: 512MB RLDRAM +  512MB HBM + 1GB LPDDR2
//	config3: 768MB RLDRAM +  768MB HBM + 512MB LPDDR2 (ample RLDRAM)
//
// (at 1/64 experiment scale). With scarce RLDRAM, MOCA's object-level
// prioritization wins; as RLDRAM grows, Heter-App catches up on
// performance while MOCA retains the energy-efficiency edge — the paper's
// conclusion for choosing config1.
//
//	go run ./examples/capacity-sweep [mixName]
package main

import (
	"fmt"
	"log"
	"os"

	"moca"
)

func main() {
	mixName := "3L1B"
	if len(os.Args) > 1 {
		mixName = os.Args[1]
	}
	mix, ok := moca.MixByName(mixName)
	if !ok {
		log.Fatalf("unknown mix %q", mixName)
	}
	fmt.Printf("workload set %s: %v\n\n", mix.Name, mix.Apps)

	fw := moca.NewFramework()
	instr := map[string]moca.Instrumentation{}
	for _, name := range mix.Apps {
		if _, done := instr[name]; done {
			continue
		}
		ins, err := fw.Instrument(moca.AppByNameMust(name))
		if err != nil {
			log.Fatal(err)
		}
		instr[name] = ins
	}

	fmt.Printf("%-10s %-10s %14s %14s %16s %16s\n",
		"config", "policy", "mem time (ns)", "mem EDP", "norm. time", "norm. EDP")
	for _, hc := range []moca.HeterConfig{moca.Config1, moca.Config2, moca.Config3} {
		var basePerf, baseEDP float64
		for _, pol := range []moca.PolicyKind{moca.PolicyAppLevel, moca.PolicyMOCA} {
			cfg := moca.DefaultSystem(fmt.Sprintf("%v/%v", hc, pol), moca.Heterogeneous(hc), pol)
			var procs []moca.ProcSpec
			for _, app := range mix.Apps {
				procs = append(procs, instr[app].Proc(pol, moca.Ref))
			}
			res, err := moca.Run(cfg, procs...)
			if err != nil {
				log.Fatal(err)
			}
			perf := float64(res.AvgMemAccessTime())
			edp := res.MemEDP()
			if pol == moca.PolicyAppLevel {
				basePerf, baseEDP = perf, edp
			}
			fmt.Printf("%-10v %-10v %14.1f %14.3e %16.3f %16.3f\n",
				hc, pol, perf/1000, edp, perf/basePerf, edp/baseEDP)
		}
	}
	fmt.Println("\nnormalized columns are relative to Heter-App within each config (Figs. 14-15)")
}
