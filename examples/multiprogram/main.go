// Multiprogram: a 4-core workload set across all six memory systems.
//
// Reproduces one column group of the paper's Figs. 10-13 for a single mix:
// the 2L1B1N set (two latency-sensitive apps, one bandwidth-sensitive, one
// non-memory-intensive) on the four homogeneous baselines and the
// heterogeneous system under Heter-App and MOCA placement.
//
//	go run ./examples/multiprogram [mixName]
package main

import (
	"fmt"
	"log"
	"os"

	"moca"
)

func main() {
	mixName := "2L1B1N"
	if len(os.Args) > 1 {
		mixName = os.Args[1]
	}
	mix, ok := moca.MixByName(mixName)
	if !ok {
		log.Fatalf("unknown mix %q", mixName)
	}
	fmt.Printf("workload set %s: %v\n\n", mix.Name, mix.Apps)

	// Profile each distinct application once.
	fw := moca.NewFramework()
	instr := map[string]moca.Instrumentation{}
	for _, name := range mix.Apps {
		if _, done := instr[name]; done {
			continue
		}
		ins, err := fw.Instrument(moca.AppByNameMust(name))
		if err != nil {
			log.Fatal(err)
		}
		instr[name] = ins
		fmt.Printf("profiled %-12s -> app class %v\n", name, ins.AppClass)
	}
	fmt.Println()

	systems := []struct {
		name    string
		modules []moca.ModuleSpec
		policy  moca.PolicyKind
	}{
		{"Homogen-DDR3", moca.Homogeneous(moca.DDR3), moca.PolicyFixed},
		{"Homogen-RL", moca.Homogeneous(moca.RLDRAM), moca.PolicyFixed},
		{"Homogen-HBM", moca.Homogeneous(moca.HBM), moca.PolicyFixed},
		{"Homogen-LP", moca.Homogeneous(moca.LPDDR2), moca.PolicyFixed},
		{"Heter-App", moca.Heterogeneous(moca.Config1), moca.PolicyAppLevel},
		{"MOCA", moca.Heterogeneous(moca.Config1), moca.PolicyMOCA},
	}

	fmt.Printf("%-14s %14s %12s %14s %14s\n",
		"system", "mem time (ns)", "mem power", "mem EDP", "system EDP")
	var baseEDP, basePerf float64
	for _, def := range systems {
		cfg := moca.DefaultSystem(def.name, def.modules, def.policy)
		var procs []moca.ProcSpec
		for _, app := range mix.Apps {
			procs = append(procs, instr[app].Proc(def.policy, moca.Ref))
		}
		res, err := moca.Run(cfg, procs...)
		if err != nil {
			log.Fatal(err)
		}
		if def.name == "Homogen-DDR3" {
			baseEDP, basePerf = res.MemEDP(), float64(res.AvgMemAccessTime())
		}
		fmt.Printf("%-14s %14.1f %10.1fmW %14.3e %14.3e\n",
			def.name, float64(res.AvgMemAccessTime())/1000,
			res.MemPowerW()*1000, res.MemEDP(), res.SystemEDP())
		if def.name == "MOCA" {
			fmt.Printf("\nMOCA vs Homogen-DDR3: %.0f%% faster memory, %.0f%% lower memory EDP\n",
				(1-float64(res.AvgMemAccessTime())/basePerf)*100,
				(1-res.MemEDP()/baseEDP)*100)
		}
	}
}
