// Quickstart: the complete MOCA pipeline on one application.
//
// This walks the exact flow of the paper's Fig. 7: profile the application
// on its training input, classify its memory objects, instrument the
// classification, and run the reference input on the heterogeneous memory
// system under MOCA — compared against the homogeneous DDR3 baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"moca"
	"moca/internal/mem"
)

func main() {
	app := moca.AppByNameMust("disparity")

	// 1. Offline profiling (training input) + classification.
	fw := moca.NewFramework()
	ins, err := fw.Instrument(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s: application-level class %v\n", app.Name, ins.AppClass)
	fmt.Println("memory objects:")
	for _, o := range ins.Profile.HeapObjects() {
		fmt.Printf("  %-14s %6d KB   MPKI %6.2f   stall/miss %6.1f   -> %v\n",
			o.Label, o.SizeBytes/1024, o.MPKI, o.StallPerMiss, o.Class)
	}

	// 2. Run the reference input on both systems.
	baseline := moca.DefaultSystem("homogen-ddr3", moca.Homogeneous(moca.DDR3), moca.PolicyFixed)
	mocaSys := moca.DefaultSystem("moca", moca.Heterogeneous(moca.Config1), moca.PolicyMOCA)

	resBase, err := moca.Run(baseline, ins.Proc(moca.PolicyFixed, moca.Ref))
	if err != nil {
		log.Fatal(err)
	}
	resMoca, err := moca.Run(mocaSys, ins.Proc(moca.PolicyMOCA, moca.Ref))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compare.
	fmt.Printf("\n%-22s %18s %18s\n", "", "Homogen-DDR3", "MOCA (config1)")
	row := func(name string, a, b float64, unit string) {
		fmt.Printf("%-22s %15.2f %2s %15.2f %2s\n", name, a, unit, b, unit)
	}
	row("memory access time", float64(resBase.AvgMemAccessTime())/1000,
		float64(resMoca.AvgMemAccessTime())/1000, "ns")
	row("memory power", resBase.MemPowerW()*1000, resMoca.MemPowerW()*1000, "mW")
	fmt.Printf("%-22s %15.3e    %15.3e\n", "memory EDP", resBase.MemEDP(), resMoca.MemEDP())

	speedup := 1 - float64(resMoca.AvgMemAccessTime())/float64(resBase.AvgMemAccessTime())
	edpGain := 1 - resMoca.MemEDP()/resBase.MemEDP()
	fmt.Printf("\nMOCA reduces memory access time by %.0f%% and memory EDP by %.0f%%\n",
		speedup*100, edpGain*100)

	fmt.Println("\npage placement under MOCA:")
	byKind := resMoca.PagesOnKind()
	kinds := make([]mem.Kind, 0, len(byKind))
	for kind := range byKind {
		kinds = append(kinds, kind)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, kind := range kinds {
		fmt.Printf("  %-8v %5d pages\n", kind, byKind[kind])
	}
}
