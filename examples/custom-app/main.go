// Custom-app: defining your own application for the MOCA pipeline.
//
// The built-in suite mirrors the paper's benchmarks, but the library is
// meant to be used on new workloads: declare the application's memory
// objects with their sizes and access patterns, and the framework
// profiles, classifies, and places them. This example models a small
// in-memory key-value store:
//
//   - a hash index that is pointer-chased on every lookup (latency-bound),
//
//   - a value log that is scanned in bursts during compaction
//     (bandwidth-bound),
//
//   - a write-ahead buffer that stays cache-resident.
//
//     go run ./examples/custom-app
package main

import (
	"fmt"
	"log"

	"moca"
)

func main() {
	kvstore := moca.AppSpec{
		Name:             "kvstore",
		ComputePerMemory: 7,
		ComputeJitter:    3,
		Seed:             0xCAFE,
		Objects: []moca.ObjectSpec{
			// Allocated during startup, before the hot structures — the
			// recovery snapshot is read once and barely touched again.
			{Label: "snapshot", Site: 0x601000, SizeBytes: 1 << 20,
				Pattern: moca.PatternStream, Weight: 0.01, StrideBytes: 64},
			{Label: "hash_index", Site: 0x601010, SizeBytes: 3 << 20,
				Pattern: moca.PatternChase, Weight: 0.40, WriteFrac: 0.10},
			{Label: "value_log", Site: 0x601020, SizeBytes: 4 << 20,
				Pattern: moca.PatternBurst, Weight: 0.25, StrideBytes: 32, WriteFrac: 0.20},
			{Label: "wal_buffer", Site: 0x601030, SizeBytes: 512 << 10,
				Pattern: moca.PatternResident, Weight: 0.15, WriteFrac: 0.60, HotBytes: 64 << 10},
		},
		StackWeight: 0.12,
		CodeWeight:  0.05,
	}
	if err := kvstore.Validate(); err != nil {
		log.Fatal(err)
	}

	fw := moca.NewFramework()
	ins, err := fw.Instrument(kvstore)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("kvstore object classification:")
	for _, o := range ins.Profile.HeapObjects() {
		fmt.Printf("  %-12s %6.2f MPKI, %6.1f stall/miss -> %v\n",
			o.Label, o.MPKI, o.StallPerMiss, o.Class)
	}
	fmt.Printf("application level: %v\n\n", ins.AppClass)

	for _, def := range []struct {
		name   string
		mods   []moca.ModuleSpec
		policy moca.PolicyKind
	}{
		{"Homogen-DDR3", moca.Homogeneous(moca.DDR3), moca.PolicyFixed},
		{"Heter-App", moca.Heterogeneous(moca.Config1), moca.PolicyAppLevel},
		{"MOCA", moca.Heterogeneous(moca.Config1), moca.PolicyMOCA},
	} {
		cfg := moca.DefaultSystem(def.name, def.mods, def.policy)
		res, err := moca.Run(cfg, ins.Proc(def.policy, moca.Ref))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s mem %6.1f ns/req, %7.1f mW, EDP %.3e\n",
			def.name, float64(res.AvgMemAccessTime())/1000,
			res.MemPowerW()*1000, res.MemEDP())
	}
}
