// Trace-replay: freezing a workload into a trace and replaying it.
//
// Traces decouple workload generation from simulation: a recorded run can
// be archived, diffed, or produced by an external tool, and replay is
// guaranteed bit-identical to the original. This example records a slice
// of mcf, inspects it, and replays it on two memory systems.
//
//	go run ./examples/trace-replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"moca"
)

func main() {
	app := moca.AppByNameMust("mcf")

	// 1. Record: freeze 400k stream items of mcf's reference input.
	var buf bytes.Buffer
	n, err := moca.RecordTrace(&buf, app, moca.Ref, nil, 400_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d stream items: %.2f MB (%.2f bytes/item)\n\n",
		n, float64(buf.Len())/(1<<20), float64(buf.Len())/float64(n))

	// 2. Replay the identical instruction stream on two systems.
	for _, kind := range []moca.MemoryKind{moca.DDR3, moca.RLDRAM} {
		tr, err := moca.OpenTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		cfg := moca.DefaultSystem("replay", moca.Homogeneous(kind), moca.PolicyFixed)
		sys, err := moca.NewSystem(cfg, []moca.ProcSpec{{
			App: app, Input: moca.Ref, Stream: tr,
		}})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(sys.SuggestedWarmup(), 200_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v IPC %.2f, memory %.1f ns/request, %d LLC misses\n",
			kind, res.Cores[0].IPC(),
			float64(res.AvgMemAccessTime())/1000, res.Cores[0].Hier.DemandMisses)
		if tr.Err() != nil {
			log.Fatal(tr.Err())
		}
	}

	// 3. Determinism: replaying twice gives identical results.
	runOnce := func() int64 {
		tr, _ := moca.OpenTrace(bytes.NewReader(buf.Bytes()))
		cfg := moca.DefaultSystem("replay", moca.Homogeneous(moca.DDR3), moca.PolicyFixed)
		sys, _ := moca.NewSystem(cfg, []moca.ProcSpec{{App: app, Input: moca.Ref, Stream: tr}})
		res, err := sys.Run(sys.SuggestedWarmup(), 200_000)
		if err != nil {
			log.Fatal(err)
		}
		return int64(res.Elapsed)
	}
	a, b := runOnce(), runOnce()
	fmt.Printf("\nreplay determinism: run1 = %d ps, run2 = %d ps, identical = %v\n", a, b, a == b)
}
