package moca

import (
	"moca/internal/classify"
	"moca/internal/core"
	"moca/internal/cpu"
	"moca/internal/exp"
	"moca/internal/heap"
	"moca/internal/mem"
	"moca/internal/obs"
	"moca/internal/profile"
	"moca/internal/sim"
	"moca/internal/stats"
	"moca/internal/trace"
	"moca/internal/workload"
)

// Classification.
type (
	// Class is an object or application memory-behavior type: L, B, or N.
	Class = classify.Class
	// Thresholds are the (Thr_Lat, Thr_BW) classification cut points.
	Thresholds = classify.Thresholds
)

// The three classes (paper Fig. 5 / Table III).
const (
	LatencySensitive   = classify.LatencySensitive
	BandwidthSensitive = classify.BandwidthSensitive
	NonIntensive       = classify.NonIntensive
)

// DefaultThresholds returns Thr_Lat = 1 MPKI, Thr_BW = 20 cycles
// (Section IV-C).
func DefaultThresholds() Thresholds { return classify.DefaultThresholds() }

// Memory modules.
type (
	// MemoryKind is a module technology from Table II.
	MemoryKind = mem.Kind
	// DeviceParams are one technology's timing/power parameters.
	DeviceParams = mem.DeviceParams
	// ModuleSpec declares one physical module of a system.
	ModuleSpec = sim.ModuleSpec
)

// The four module technologies of Table II.
const (
	DDR3   = mem.DDR3
	HBM    = mem.HBM
	RLDRAM = mem.RLDRAM
	LPDDR2 = mem.LPDDR2
)

// Device returns the Table II parameters for a module technology.
func Device(kind MemoryKind) DeviceParams { return mem.Preset(kind) }

// Systems and policies.
type (
	// SystemConfig describes a complete machine to simulate.
	SystemConfig = sim.Config
	// PolicyKind selects the page-placement policy.
	PolicyKind = sim.PolicyKind
	// HeterConfig selects one of the Section VI-C capacity configurations.
	HeterConfig = sim.HeterConfig
	// ProcSpec binds an application to a core.
	ProcSpec = sim.ProcSpec
	// System is an assembled machine.
	System = sim.System
	// Result is a finished simulation's statistics.
	Result = sim.Result
)

// Placement policies.
const (
	// PolicyFixed places every page in module order (homogeneous systems).
	PolicyFixed = sim.PolicyFixed
	// PolicyAppLevel is the application-level Heter-App baseline.
	PolicyAppLevel = sim.PolicyAppLevel
	// PolicyMOCA is the paper's object-level policy.
	PolicyMOCA = sim.PolicyMOCA
	// PolicyMigrate is the dynamic hot-page migration baseline
	// (Section IV-E's contrast point).
	PolicyMigrate = sim.PolicyMigrate
)

// The three heterogeneous capacity configurations (Section VI-C).
const (
	Config1 = sim.Config1
	Config2 = sim.Config2
	Config3 = sim.Config3
)

// Homogeneous returns the paper's homogeneous baseline module set: the
// given technology across four interleaved channels.
func Homogeneous(kind MemoryKind) []ModuleSpec { return sim.Homogeneous(kind) }

// Heterogeneous returns the module set of one Section VI-C configuration
// (Config1 is the paper's default: RLDRAM + HBM + 2x LPDDR2).
func Heterogeneous(cfg HeterConfig) []ModuleSpec { return sim.Heterogeneous(cfg) }

// Workloads.
type (
	// AppSpec declares a synthetic application.
	AppSpec = workload.AppSpec
	// ObjectSpec declares one named heap object of an application.
	ObjectSpec = workload.ObjectSpec
	// Pattern is an object's access behavior.
	Pattern = workload.Pattern
	// Input selects training or reference data.
	Input = workload.Input
	// Mix is a named 4-application workload set.
	Mix = workload.Mix
	// Site is a synthetic allocation return address.
	Site = heap.Site
)

// Object access patterns.
const (
	PatternStream    = workload.Stream
	PatternStreamDep = workload.StreamDep
	PatternChase     = workload.Chase
	PatternRandom    = workload.Random
	PatternResident  = workload.Resident
	PatternBurst     = workload.Burst
)

// Input sets (Section V-D: profile on train, evaluate on ref).
const (
	Train = workload.Train
	Ref   = workload.Ref
)

// The MOCA pipeline.
type (
	// Framework is the offline profile-classify-instrument pipeline.
	Framework = core.Framework
	// Instrumentation is a profiled application's classification,
	// ready to drive MOCA allocation.
	Instrumentation = core.Instrumentation
	// Profile is a profiling run's per-object result.
	Profile = profile.Profile
	// ObjectProfile is one profiled memory object (a Fig. 2 point).
	ObjectProfile = profile.ObjectProfile
	// ClassMap carries object classifications into an allocation run.
	ClassMap = heap.ClassMap
)

// Experiments and reporting.
type (
	// Experiments regenerates the paper's tables and figures.
	Experiments = exp.Runner
	// SystemDef names one memory system under experiment.
	SystemDef = exp.SystemDef
	// Grid is a labeled rows x columns result matrix (one figure).
	Grid = stats.Grid
	// Table is a rendered text table.
	Table = stats.Table
)

// Observability.
type (
	// ObsOptions selects runtime observability for a simulation run (the
	// zero value disables it).
	ObsOptions = obs.Options
	// MetricsSnapshot is a frozen metrics-registry view; a run's Result
	// carries one when metrics were enabled.
	MetricsSnapshot = obs.Snapshot
	// RunTrace is a bounded, concurrency-safe sink of typed run-trace
	// events (page placed, fallback taken, row conflict, MSHR full,
	// migration triggered).
	RunTrace = obs.Trace
	// TraceEvent is one structured run-trace record.
	TraceEvent = obs.Event
)

// NewRunTrace returns a run-trace sink retaining at most max events
// (<= 0 selects the default cap).
func NewRunTrace(max int) *RunTrace { return obs.NewTrace(max) }

// MergeMetrics aggregates snapshots: counters add, high-watermark gauges
// take the maximum.
func MergeMetrics(snaps ...*MetricsSnapshot) *MetricsSnapshot { return obs.Merge(snaps...) }

// Instruction streams and traces.
type (
	// Instruction is one element of a core's instruction stream.
	Instruction = cpu.Instr
	// InstructionStream feeds a simulated core.
	InstructionStream = cpu.Stream
	// TraceWriter records an instruction stream to a compact binary
	// trace.
	TraceWriter = trace.Writer
	// TraceReader replays a recorded trace as an InstructionStream.
	TraceReader = trace.Reader
	// TraceStream replays a trace of either format; Err distinguishes
	// clean end-of-trace from a decode fault.
	TraceStream = trace.ReplayStream
	// TraceBlockWriter records the v2 block format: framed, per-block
	// compressed, seekable.
	TraceBlockWriter = trace.BlockWriter
	// TraceBlockReader replays a v2 trace; it refills the core's batch
	// buffer straight from its decoded block arena.
	TraceBlockReader = trace.BlockReader
	// TracePosition is a durable v2 resume point (block boundary).
	TracePosition = trace.Position
)
